package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

func testKey(i int) Key {
	return Key{
		Model: "wmm",
		Spec:  graph.Hash128{uint64(i), uint64(i) * 3},
		Prog:  graph.Hash128{uint64(i) * 7, uint64(i) * 11},
	}
}

func verdictFor(i int) core.Verdict {
	switch i % 3 {
	case 0:
		return core.OK
	case 1:
		return core.SafetyViolation
	default:
		return core.ATViolation
	}
}

// TestRoundTrip writes verdicts, closes, reopens, and expects every one
// back — the across-process-restarts contract.
func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "verdicts.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), verdictFor(i), fmt.Sprintf("prog-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Stats().Loaded; got != n {
		t.Fatalf("reopened store loaded %d records, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		v, ok := s2.Lookup(testKey(i))
		if !ok {
			t.Fatalf("key %d missing after reopen", i)
		}
		if v != verdictFor(i) {
			t.Fatalf("key %d: verdict %v, want %v", i, v, verdictFor(i))
		}
	}
	st := s2.Stats()
	if st.Hits != n || st.Misses != 0 {
		t.Fatalf("stats = %d hits / %d misses, want %d / 0", st.Hits, st.Misses, n)
	}
}

// TestIndecisiveDropped verifies Error and Canceled are never persisted.
func TestIndecisiveDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), core.Error, "err-prog"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(2), core.Canceled, "canceled-prog"); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("indecisive verdicts stored: Len = %d", s.Len())
	}
	if _, ok := s.Lookup(testKey(1)); ok {
		t.Fatal("Error verdict served from store")
	}
	s.Close()
	if info, err := os.Stat(path); err != nil || info.Size() != 0 {
		t.Fatalf("log not empty after indecisive puts: size %d err %v", info.Size(), err)
	}
}

// TestDuplicateAndConflict checks the dedupe and unsound-rekey guards.
func TestDuplicateAndConflict(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "verdicts.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	k := testKey(1)
	if err := s.Put(k, core.OK, "p"); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k, core.OK, "p"); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().Appended; got != 1 {
		t.Fatalf("duplicate put appended a record: Appended = %d", got)
	}
	if err := s.Put(k, core.SafetyViolation, "p"); err == nil {
		t.Fatal("conflicting decisive verdict accepted silently")
	} else if !errors.Is(err, ErrConflict) {
		// Callers (vsync.VerifyMatrix) tell broken keying apart from
		// plain I/O failures by this sentinel.
		t.Fatalf("conflict error does not wrap ErrConflict: %v", err)
	}
	if v, _ := s.Lookup(k); v != core.OK {
		t.Fatalf("conflict overwrote stored verdict: %v", v)
	}
}

// TestConcurrentWriters hammers one store from many goroutines and
// expects every record to survive a reopen.
func TestConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := w*perWriter + i
				if err := s.Put(testKey(id), verdictFor(id), fmt.Sprintf("w%d-%d", w, i)); err != nil {
					t.Error(err)
				}
				// Interleave lookups of everyone's keys.
				s.Lookup(testKey(i))
			}
		}(w)
	}
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for id := 0; id < writers*perWriter; id++ {
		if v, ok := s2.Lookup(testKey(id)); !ok || v != verdictFor(id) {
			t.Fatalf("key %d lost or wrong after concurrent writes: ok=%v v=%v", id, ok, v)
		}
	}
}

// corruptAndReopen writes n records, mutates the file with f, reopens,
// and returns the reopened store.
func corruptAndReopen(t *testing.T, n int, f func([]byte) []byte) *Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "verdicts.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), verdictFor(i), fmt.Sprintf("prog-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, f(data), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Close() })
	return s2
}

// TestTruncatedTail cuts a record in half; the prefix must load, the
// torn record must not, and the file must be healed for appends.
func TestTruncatedTail(t *testing.T) {
	const n = 10
	s := corruptAndReopen(t, n, func(data []byte) []byte {
		return data[:len(data)-7] // tear the last record mid-payload
	})
	st := s.Stats()
	if st.Loaded != n-1 {
		t.Fatalf("loaded %d records from torn log, want %d", st.Loaded, n-1)
	}
	if st.Corrupted == 0 {
		t.Fatal("torn tail not reported in Stats().Corrupted")
	}
	if _, ok := s.Lookup(testKey(n - 1)); ok {
		t.Fatal("torn record trusted")
	}
	// The healed log must accept and round-trip new appends.
	if err := s.Put(testKey(n-1), verdictFor(n-1), "rewritten"); err != nil {
		t.Fatal(err)
	}
	path := s.Path()
	s.Close()
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Stats().Loaded != n || s3.Stats().Corrupted != 0 {
		t.Fatalf("healed log reloads %d records with %d corrupt bytes, want %d / 0",
			s3.Stats().Loaded, s3.Stats().Corrupted, n)
	}
}

// TestCorruptedTailChecksum flips payload bytes of the last record; the
// checksum must reject it.
func TestCorruptedTailChecksum(t *testing.T) {
	const n = 10
	s := corruptAndReopen(t, n, func(data []byte) []byte {
		data[len(data)-10] ^= 0xff // payload byte of the final record
		return data
	})
	if st := s.Stats(); st.Loaded != n-1 || st.Corrupted == 0 {
		t.Fatalf("checksum-corrupt tail: loaded %d, corrupted %d", st.Loaded, st.Corrupted)
	}
	if _, ok := s.Lookup(testKey(n - 1)); ok {
		t.Fatal("checksum-corrupt record trusted")
	}
}

// TestCorruptedMiddle stops trust at the first bad record even when
// well-formed bytes follow it (a mid-log tear must not resynchronize on
// attacker- or garbage-controlled framing).
func TestCorruptedMiddle(t *testing.T) {
	const n = 10
	var recLen int
	s := corruptAndReopen(t, n, func(data []byte) []byte {
		recLen = len(data) / n
		data[3*recLen] ^= 0xff // break the magic of record 3
		return data
	})
	if st := s.Stats(); st.Loaded != 3 || st.Corrupted != 7*recLen {
		t.Fatalf("mid-log corruption: loaded %d records, %d corrupt bytes (record len %d)",
			st.Loaded, st.Corrupted, recLen)
	}
}

// TestGarbageFile refuses to open (and, crucially, to truncate) a
// non-empty file that was never a store — a mistyped -store path must
// not destroy the user's file.
func TestGarbageFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	content := bytes.Repeat([]byte("not a store"), 100)
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("opened a file that was never a verdict store")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(after, content) {
		t.Fatal("refused open still modified the file")
	}
}

// TestTornFirstRecord: a store whose very first append tore mid-record
// still opens (the magic prefix identifies it as ours) and heals.
func TestTornFirstRecord(t *testing.T) {
	s := corruptAndReopen(t, 1, func(data []byte) []byte {
		return data[:headerSize+3] // magic + length + a few payload bytes
	})
	if st := s.Stats(); st.Loaded != 0 || st.Corrupted == 0 {
		t.Fatalf("torn-first-record store: loaded %d, corrupted %d", st.Loaded, st.Corrupted)
	}
	if err := s.Put(testKey(1), core.OK, "fresh"); err != nil {
		t.Fatal(err)
	}
}

// encodeV1Record builds a record in the original (pre-code-epoch) v1
// layout: [1B version=1][16B key][1B verdict][2B name len][name].
func encodeV1Record(key graph.Hash128, v core.Verdict, name string) []byte {
	plen := 20 + len(name)
	rec := make([]byte, headerSize+plen+4)
	binary.LittleEndian.PutUint32(rec, recordMagic)
	binary.LittleEndian.PutUint32(rec[4:], uint32(plen))
	p := rec[headerSize : headerSize+plen]
	p[0] = 1
	binary.LittleEndian.PutUint64(p[1:], key[0])
	binary.LittleEndian.PutUint64(p[9:], key[1])
	p[17] = byte(v)
	binary.LittleEndian.PutUint16(p[18:], uint16(len(name)))
	copy(p[20:], name)
	binary.LittleEndian.PutUint32(rec[headerSize+plen:], crc32.ChecksumIEEE(p))
	return rec
}

// TestV1UpgradeRetainsHistory: opening a store written by the v1
// format must treat its records as stale foreign-version history —
// retained, never served — not as a corrupt tail to truncate. A short
// name makes the v1 payload (20+8=28 bytes) smaller than the v2 fixed
// payload (36), the exact shape a version-blind length bound rejects.
func TestV1UpgradeRetainsHistory(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	v1 := encodeV1Record(testKey(1).Hash(), core.OK, "wmm/ttas")
	if err := os.WriteFile(path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Loaded != 0 || st.Stale != 1 || st.Corrupted != 0 {
		t.Fatalf("v1 log open: loaded %d, stale %d, corrupted %d, want 0 / 1 / 0",
			st.Loaded, st.Stale, st.Corrupted)
	}
	if _, ok := s.Lookup(testKey(1)); ok {
		t.Fatal("v1 record served by a v2 build")
	}
	if err := s.Put(testKey(2), core.SafetyViolation, "fresh"); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if st := s2.Stats(); st.Loaded != 1 || st.Stale != 1 {
		t.Fatalf("reopen over v1 history: loaded %d, stale %d, want 1 / 1", st.Loaded, st.Stale)
	}
}

// TestShortMagicPrefixHeals: a crash during the very first append can
// leave fewer than 4 bytes on disk. If those bytes are a prefix of the
// record magic the file is ours and torn — it must heal like any torn
// tail, not refuse to open until an operator deletes it.
func TestShortMagicPrefixHeals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	full := encodeRecord(CodeEpoch(), testKey(1).Hash(), core.OK, "p")
	for n := 1; n < 4; n++ {
		if err := os.WriteFile(path, full[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(path)
		if err != nil {
			t.Fatalf("%d-byte magic prefix refused instead of healed: %v", n, err)
		}
		if st := s.Stats(); st.Loaded != 0 || st.Corrupted != n {
			t.Fatalf("%d-byte prefix: loaded %d, corrupted %d", n, st.Loaded, st.Corrupted)
		}
		if err := s.Put(testKey(1), core.OK, "fresh"); err != nil {
			t.Fatal(err)
		}
		s.Close()
		s2, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		if s2.Stats().Loaded != 1 {
			t.Fatalf("%d-byte prefix: healed log reloads %d records, want 1", n, s2.Stats().Loaded)
		}
		s2.Close()
	}
	// A short file that is NOT a magic prefix stays protected: refuse.
	if err := os.WriteFile(path, []byte("no"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("2 bytes of non-magic garbage opened as a store")
	}
}

// TestPutAfterClose: a late Put must fail cleanly, not crash — it is
// how the cache's write-through failure surfaces.
func TestPutAfterClose(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "verdicts.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey(1), core.OK, "late"); err == nil {
		t.Fatal("Put after Close succeeded")
	}
}

// TestEpochInvalidation simulates a cross-commit edit to
// verification-relevant source: records written under one code epoch
// must not be served by a binary with another (the program fingerprint
// cannot see contended-path edits, so serving them could green-light a
// correctness regression) — but they must be *retained*, so a bisect
// that rebuilds the original epoch flips straight back to a warm
// store instead of silently losing minutes of AMC work.
func TestEpochInvalidation(t *testing.T) {
	if CodeEpoch() == (graph.Hash128{}) {
		t.Fatal("code epoch is zero")
	}
	path := filepath.Join(t.TempDir(), "verdicts.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), verdictFor(i), fmt.Sprintf("prog-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// "Rebuild" from edited verification source: flip the epoch.
	oldEpoch := codeEpoch
	codeEpoch = graph.Hash128{oldEpoch[0] ^ 1, oldEpoch[1]}
	defer func() { codeEpoch = oldEpoch }()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Loaded != 0 || st.Stale != n {
		t.Fatalf("foreign-epoch open: loaded %d, stale %d, want 0 / %d", st.Loaded, st.Stale, n)
	}
	for i := 0; i < n; i++ {
		if _, ok := s2.Lookup(testKey(i)); ok {
			t.Fatalf("verdict %d from another code epoch served", i)
		}
	}
	if err := s2.Put(testKey(0), core.OK, "re-verified"); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	// "Bisect back": restore the original epoch. The n original records
	// must still be on disk and served again; the flipped-epoch record
	// is now the foreign one.
	codeEpoch = oldEpoch
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if st := s3.Stats(); st.Loaded != n || st.Stale != 1 {
		t.Fatalf("after flip-back: loaded %d, stale %d, want %d / 1", st.Loaded, st.Stale, n)
	}
	for i := 0; i < n; i++ {
		if v, ok := s3.Lookup(testKey(i)); !ok || v != verdictFor(i) {
			t.Fatalf("original verdict %d lost across an epoch round-trip: ok=%v v=%v", i, ok, v)
		}
	}
}

// TestStaleRetentionBudget: foreign-epoch history is bounded — once it
// exceeds the retention budget the *oldest* foreign records are
// compacted away (and the newest kept), so a CI-restored store cannot
// grow by a corpus per verification-code commit forever.
func TestStaleRetentionBudget(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	recSize := 0
	for i := 0; i < n; i++ {
		if err := s.Put(testKey(i), verdictFor(i), "pppp"); err != nil { // equal-length names => equal record sizes
			t.Fatal(err)
		}
	}
	s.Close()
	if info, err := os.Stat(path); err != nil {
		t.Fatal(err)
	} else {
		recSize = int(info.Size()) / n
	}

	oldEpoch := codeEpoch
	oldBudget := staleRetainBytes
	codeEpoch = graph.Hash128{oldEpoch[0] ^ 1, oldEpoch[1]}
	staleRetainBytes = 3 * recSize // room for 3 of the 8 foreign records
	defer func() { codeEpoch = oldEpoch; staleRetainBytes = oldBudget }()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Stale != 3 {
		// Stale reports what actually survived the budget — telling the
		// operator 8 records are "retained for flip-backs" when 5 were
		// just compacted away would be a lie.
		t.Fatalf("retained foreign records: %d, want 3", st.Stale)
	}
	if err := s2.Put(testKey(100), core.OK, "new-epoch"); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	// Back on the original epoch only the 3 newest of the old records
	// survived the budget; the new-epoch record is retained foreign.
	codeEpoch = oldEpoch
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if st := s3.Stats(); st.Loaded != 3 || st.Stale != 1 {
		t.Fatalf("after budgeted compaction: loaded %d, stale %d, want 3 / 1", st.Loaded, st.Stale)
	}
	for i := 0; i < n; i++ {
		_, ok := s3.Lookup(testKey(i))
		if want := i >= n-3; ok != want {
			t.Fatalf("record %d survival = %v, want %v (oldest must be dropped first)", i, ok, want)
		}
	}
}

// TestKeyHashSensitivity ensures every key component changes the
// content address.
func TestKeyHashSensitivity(t *testing.T) {
	base := Key{Model: "wmm", Spec: graph.Hash128{1, 2}, Prog: graph.Hash128{3, 4}}
	variants := []Key{
		{Model: "sc", Spec: base.Spec, Prog: base.Prog},
		{Model: base.Model, Spec: graph.Hash128{1, 5}, Prog: base.Prog},
		{Model: base.Model, Spec: base.Spec, Prog: graph.Hash128{5, 4}},
	}
	for i, k := range variants {
		if k.Hash() == base.Hash() {
			t.Fatalf("variant %d collides with base key", i)
		}
	}
	if base.Hash() != base.Hash() {
		t.Fatal("key hash not deterministic")
	}
}

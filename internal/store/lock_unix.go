//go:build darwin || dragonfly || freebsd || linux || netbsd || openbsd

package store

import (
	"os"
	"syscall"

	"repro/internal/faultinject"
)

// lockFile takes an exclusive, blocking advisory flock on the sidecar
// lock file — the store's per-append mutex across processes. Blocking
// is the right behavior for the multi-writer protocol: the lock is
// held only for a tail re-scan plus one record write (or, rarely, a
// compaction rewrite), so a contender waits milliseconds, and failing
// instead would turn every append race into a lost verdict. The lock
// belongs to the open file description and unlockFile (or closing the
// handle) releases it.
//
// The lock target is the sidecar (<path>.lock), not the data log:
// compaction replaces the log via rename, and a lock on the replaced
// inode would silently stop excluding anyone who reopens the path. The
// sidecar is stable across such renames.
//
// The build tag lists the platforms whose syscall package defines
// Flock (the set cmd/go's lockedfile uses) — `unix` alone would break
// compilation on solaris/illumos/aix, which lack it.
func lockFile(f *os.File) error {
	if err := faultinject.Fire("store.flock"); err != nil {
		return err
	}
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX)
		switch err {
		case nil:
			return nil
		case syscall.EINTR:
			continue
		default:
			// ENOLCK, ENOTSUP, ...: this filesystem cannot take advisory
			// locks (an NFS mount without a lock manager, say). Fall back
			// to the unenforced protocol — the standing behavior of the
			// no-flock platforms — rather than refusing to open a store
			// that worked before locking existed.
			return nil
		}
	}
}

// unlockFile releases the advisory lock taken by lockFile. Errors are
// ignored: the handle either was not locked (the lockFile fallback) or
// the lock dies with the file description anyway.
func unlockFile(f *os.File) {
	syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
}

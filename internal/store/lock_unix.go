//go:build darwin || dragonfly || freebsd || linux || netbsd || openbsd

package store

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive, non-blocking advisory flock on the open
// log, enforcing the store's single-owner contract across processes:
// two handles truncating and appending the same file at independent
// offsets would punch unreadable holes mid-log, and everything after
// the first bad record is discarded on the next load. Non-blocking so
// a held lock fails Open immediately (with a clear "store in use"
// error) instead of stalling a suite run behind another process. The
// lock belongs to the open file description and is released when the
// handle is closed.
//
// The build tag lists the platforms whose syscall package defines
// Flock (the set cmd/go's lockedfile uses) — `unix` alone would break
// compilation on solaris/illumos/aix, which lack it.
func lockFile(f *os.File) error {
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		switch err {
		case nil:
			return nil
		case syscall.EINTR:
			continue
		case syscall.EWOULDBLOCK:
			// The only errno that actually means "another process holds
			// the lock" — the caller's "store in use" message is accurate
			// for this case alone.
			return err
		default:
			// ENOLCK, ENOTSUP, ...: this filesystem cannot take advisory
			// locks (an NFS mount without a lock manager, say). Fall back
			// to the unenforced single-owner contract — the standing
			// behavior of the no-flock platforms — rather than refusing
			// to open a store that worked before locking existed and
			// misdiagnosing the failure as a concurrent owner.
			return nil
		}
	}
}

// haveFlock tells the compaction rename which ordering to use: with
// real locks the old handle stays open (and locked) across the rename
// so the path is never an unlocked target; POSIX permits renaming over
// an open file.
const haveFlock = true

//go:build darwin || dragonfly || freebsd || linux || netbsd || openbsd

package store

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

// TestOpenExclusive: two simultaneous owners of one store file would
// interleave truncates and stale-offset appends, so the second Open
// must fail with a clear "in use" error while the first handle lives —
// and succeed again once it is closed. flock is per open file
// description, so two Opens in one process exercise the same code path
// two processes would.
func TestOpenExclusive(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	s1, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s1.Put(testKey(1), core.OK, "p"); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("second Open of a live store succeeded; concurrent owners corrupt the log")
	} else if !strings.Contains(err.Error(), "in use") {
		t.Fatalf("second Open failed with the wrong error: %v", err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatalf("Open after the owner closed: %v", err)
	}
	defer s2.Close()
	if s2.Stats().Loaded != 1 {
		t.Fatalf("reopened store loaded %d records, want 1", s2.Stats().Loaded)
	}
}

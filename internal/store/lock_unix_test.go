//go:build darwin || dragonfly || freebsd || linux || netbsd || openbsd

package store

import (
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// TestOpenSharedConcurrentSessions: the multi-writer protocol's
// single-process face. Two live sessions on one log append
// interleaved; each observes the other's verdicts after Refresh, and a
// third session opening afterwards loads the union. flock is per open
// file description, so two sessions in one process exercise the same
// sidecar-lock path two processes would.
func TestOpenSharedConcurrentSessions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	s1, err := OpenShared(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := OpenShared(path, nil)
	if err != nil {
		t.Fatalf("second OpenShared of a live store: %v", err)
	}

	// Interleaved appends from both sessions.
	for i := 0; i < 10; i++ {
		s := s1
		if i%2 == 1 {
			s = s2
		}
		if err := s.Put(testKey(i), core.OK, "p"); err != nil {
			t.Fatal(err)
		}
	}

	// Each session sees its own 5 appends immediately; the peer's 5
	// become visible through tail re-scans — partly during s1's own
	// puts (the pre-append refresh), the remainder via explicit
	// Refresh. The cumulative count must be exactly the peer's 5:
	// none lost, none double-counted.
	if _, err := s1.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := s1.Stats().Refreshed; got != 5 {
		t.Fatalf("s1 observed %d concurrent verdicts, want the peer's 5", got)
	}
	for i := 0; i < 10; i++ {
		if v, ok := s1.Lookup(testKey(i)); !ok || v != core.OK {
			t.Fatalf("s1 missing verdict %d after Refresh (ok=%v v=%v)", i, ok, v)
		}
	}
	// A second Refresh with no new writes is a no-op.
	if n, err := s1.Refresh(); err != nil || n != 0 {
		t.Fatalf("idle Refresh = (%d, %v), want (0, nil)", n, err)
	}

	// Lookup on the not-yet-refreshed session also works: Put's
	// pre-append tail re-scan pulls the peer's records in, so a
	// duplicate put from the other session is a no-op, not a second
	// record.
	if err := s2.Put(testKey(0), core.OK, "dup"); err != nil {
		t.Fatal(err)
	}
	if got := s2.Stats().Appended; got != 5 {
		t.Fatalf("s2 appended %d records, want its own 5 (cross-session dup must not append)", got)
	}

	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, err := Open(path) // deprecated alias must keep working
	if err != nil {
		t.Fatalf("Open after both sessions closed: %v", err)
	}
	defer s3.Close()
	if s3.Stats().Loaded != 10 || s3.Len() != 10 {
		t.Fatalf("reopened store loaded %d records (index %d), want 10", s3.Stats().Loaded, s3.Len())
	}
}

// TestRefreshSeesExternalCompaction: a session must survive another
// process replacing the log file (Compact's atomic rename) by
// detecting the inode change and rescanning.
func TestRefreshSeesExternalCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	s1, err := OpenShared(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := OpenShared(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	for i := 0; i < 4; i++ {
		if err := s1.Put(testKey(i), core.OK, "p"); err != nil {
			t.Fatal(err)
		}
		if err := s1.Put(testKey(i), core.OK, "p"); err != nil {
			t.Fatal(err) // in-memory duplicate, no record
		}
	}
	// Duplicate *records* only arise from racing processes; fabricate
	// one by a raw double-append through a third session's file.
	if _, err := s2.Refresh(); err != nil {
		t.Fatal(err)
	}

	// s1 compacts (dedup rewrite → rename). s2's next operation must
	// notice the replaced inode and keep answering correctly.
	if _, err := s1.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Put(testKey(99), core.SafetyViolation, "late"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if v, ok := s2.Lookup(testKey(i)); !ok || v != core.OK {
			t.Fatalf("s2 lost verdict %d across external compaction (ok=%v v=%v)", i, ok, v)
		}
	}
	if v, ok := s1.Lookup(testKey(99)); ok && v != core.SafetyViolation {
		t.Fatalf("s1 sees wrong verdict for late key: %v", v)
	}
}

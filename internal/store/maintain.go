package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"repro/internal/faultinject"
)

// MergeStats accounts one Merge call.
type MergeStats struct {
	Scanned    int // well-formed records found in the source log
	Added      int // records appended to this log
	Duplicates int // records this log already had, same verdict
	Conflicts  int // records contradicting this log's verdict (kept out; destination wins)
	Skipped    int // records of a version this build cannot parse
}

// Merge folds the verdict log at srcPath into this session's log.
// Records are content-addressed — identified by (code epoch, key hash)
// and independent of order — so merge is a dedup-union: every source
// record this log has not seen is appended verbatim, preserving its
// provenance (writing build's epoch, human-readable name, per-cell
// cost once records carry it); records already present are skipped. A
// source record *contradicting* a stored verdict is refused
// (destination wins) and counted — the same unsound-rekey stance as
// Put, except Merge reports rather than fails, because one bad record
// must not block pooling a fleet's corpus. The source is read once,
// unlocked; a torn source tail simply ends its scan. Merging a store
// into itself is a no-op (everything dedups).
func (s *Session) Merge(srcPath string) (MergeStats, error) {
	var ms MergeStats
	data, err := os.ReadFile(srcPath)
	if err != nil {
		return ms, fmt.Errorf("store: merge: %w", err)
	}
	if len(data) > 0 {
		var magic [4]byte
		binary.LittleEndian.PutUint32(magic[:], recordMagic)
		n := min(len(data), len(magic))
		if !bytes.Equal(data[:n], magic[:n]) {
			return ms, fmt.Errorf("store: merge: %s is not a verdict store (bad leading magic)", srcPath)
		}
	}
	recs, _ := scanLog(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return ms, fmt.Errorf("store: %s: Merge after Close", s.path)
	}
	err = s.withFileLock(func() error {
		if err := s.refreshLocked(); err != nil {
			return err
		}
		cur := currentEpoch()
		var buf []byte
		type added struct {
			id    recordID
			e     entry
			bytes int
		}
		var adds []added
		for _, r := range recs {
			ms.Scanned++
			if !r.decodable {
				ms.Skipped++
				continue
			}
			if prev, ok := s.index[r.id]; ok {
				if prev.v == r.v {
					ms.Duplicates++
				} else {
					ms.Conflicts++
					s.stats.Conflicts++
				}
				continue
			}
			buf = append(buf, data[r.start:r.end]...)
			adds = append(adds, added{r.id, entry{r.v, r.name}, r.end - r.start})
		}
		if len(buf) == 0 {
			return nil
		}
		// One write: O_APPEND makes the whole batch land contiguously
		// at EOF even against concurrent appenders.
		if _, err := s.f.Write(buf); err != nil {
			// A partial batch is a torn tail of our own making; reopen
			// resyncs scanned/index with whatever actually landed and
			// heals the tear.
			s.openLocked()
			return fmt.Errorf("store: merge append to %s: %w", s.path, err)
		}
		for _, a := range adds {
			s.index[a.id] = a.e
			s.stats.Appended++
			ms.Added++
			if a.id.epoch != cur {
				s.stats.Stale++
				s.staleBytes += int64(a.bytes)
			}
		}
		s.scanned += int64(len(buf))
		return nil
	})
	return ms, err
}

// Compact rewrites the log in place, dropping duplicate records (same
// epoch and key — concurrent appenders race benignly and merge keeps
// first-wins, so dups accumulate) and enforcing the foreign-epoch
// retention budget by dropping the *oldest* stale records first. The
// rewrite is a temp-file write plus atomic rename under the append
// lock; other live sessions detect the inode change at their next
// locked operation and rescan. Returns the number of records dropped.
func (s *Session) Compact() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return 0, fmt.Errorf("store: %s: Compact after Close", s.path)
	}
	var dropped int
	err := s.withFileLock(func() error {
		if err := s.refreshLocked(); err != nil {
			return err
		}
		var err error
		dropped, err = s.compactLocked()
		return err
	})
	return dropped, err
}

// compactLocked is the rewrite shared by Compact and the open-time
// budget enforcement. Caller holds mu and the file lock; when anything
// is dropped the log is rewritten and the session reopened on the new
// file, otherwise it is a no-op.
func (s *Session) compactLocked() (int, error) {
	data := make([]byte, s.scanned)
	if _, err := io.ReadFull(io.NewSectionReader(s.f, 0, s.scanned), data); err != nil {
		return 0, fmt.Errorf("store: compact: reading %s: %w", s.path, err)
	}
	recs, _ := scanLog(data)
	cur := currentEpoch()

	type span struct {
		start, end int
		live       bool // current-epoch, this record version
	}
	seen := make(map[recordID]bool, len(recs))
	spans := make([]span, 0, len(recs))
	staleBytes := 0
	dropped := 0
	for _, r := range recs {
		if r.decodable {
			if seen[r.id] {
				dropped++
				continue
			}
			seen[r.id] = true
		}
		live := r.decodable && r.id.epoch == cur
		if !live {
			staleBytes += r.end - r.start
		}
		spans = append(spans, span{r.start, r.end, live})
	}
	// Enforce the retention budget oldest-first: walk stale spans in
	// write order, dropping until the survivors fit.
	if staleBytes > staleRetainBytes {
		for i := range spans {
			if spans[i].live {
				continue
			}
			staleBytes -= spans[i].end - spans[i].start
			spans[i].end = spans[i].start // tombstone
			dropped++
			if staleBytes <= staleRetainBytes {
				break
			}
		}
	}
	if dropped == 0 {
		// Nothing to rewrite; Compact of a tight log is a successful
		// no-op.
		return 0, nil
	}
	var buf []byte
	for _, sp := range spans {
		buf = append(buf, data[sp.start:sp.end]...)
	}
	if err := s.replaceLog(buf); err != nil {
		return 0, err
	}
	return dropped, s.openLocked()
}

// replaceLog atomically replaces the data log with content via a
// synced temp file and rename. Caller holds mu and the file lock — the
// lock lives on the sidecar file, which the rename does not touch, so
// exclusion holds across the swap. The session's own handle is closed
// first (Windows refuses to rename over an open file; POSIX does not
// care) and the caller reopens via openLocked.
func (s *Session) replaceLog(content []byte) error {
	tmp := s.path + ".compact"
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	if _, err := tf.Write(content); err == nil {
		err = tf.Sync()
	}
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: compact: %w", err)
	}
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	if err := faultinject.Fire("store.rename"); err != nil {
		os.Remove(tmp)
		if oerr := s.openLocked(); oerr != nil {
			return fmt.Errorf("store: compact: %v; reopening original: %w", err, oerr)
		}
		return fmt.Errorf("store: compact: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		// The original is intact; reopen it so the session stays usable.
		if oerr := s.openLocked(); oerr != nil {
			return fmt.Errorf("store: compact: %v; reopening original: %w", err, oerr)
		}
		return fmt.Errorf("store: compact: %w", err)
	}
	return nil
}

package store

import "embed"

// sourceFS carries this package's own .go sources, folded into the
// record code epoch (see epoch.go): a bug in key construction, record
// encoding or the load scan mis-associates verdicts with problems, and
// fixing it must orphan every record the buggy build wrote — the same
// invariant the epoch enforces for the checker and the program
// constructors.
//
//go:embed *.go
var sourceFS embed.FS

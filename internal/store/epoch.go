package store

import (
	"fmt"
	"io/fs"
	"sort"
	"sync"

	"repro/internal/graph"
	"repro/internal/srcid"
)

// The record code epoch covers everything that can mis-associate a
// verdict with a problem: srcid.Epoch (the checker and program
// constructors), this package's own sources (key hashing, record
// encode/decode, the load scan), and every key-handling package above
// it in the import graph that registers itself (internal/optimize's
// cacheKey translation, vsync's matrix key construction). srcid cannot
// import those without a cycle, so the dependency is inverted:
// they push their embedded sources here from init functions, and the
// epoch is computed lazily on the first store use — which is in main
// or a test, safely after every init ran. The cmd/ mains construct
// keys too but only as verbatim field copies; they are deliberately
// not registered.
//
// Consequence: a binary that imports store but not optimize/vsync
// computes a different epoch. That is sound — its records and theirs
// simply don't interchange, each build re-verifies what it can't
// trust — but tools meant to SHARE a store must therefore link every
// registering package; cmd/vsyncopt blank-imports repro/vsync for
// exactly this reason.

type epochSource struct {
	name  string
	files fs.FS
}

var (
	epochMu     sync.Mutex
	epochFired  bool
	epochExtras []epochSource
	epochOnce   sync.Once
	// codeEpoch is written once by currentEpoch; tests (which always
	// trigger that computation first) then override it directly to
	// simulate a cross-commit code edit.
	codeEpoch graph.Hash128
)

// RegisterCodeSource folds a key-handling package's embedded sources
// into the code epoch stamped on every record. Call from an init
// function; a call after the first store use panics, because an epoch
// that silently excluded a registered package would key records
// written by code it never witnessed.
func RegisterCodeSource(name string, files fs.FS) {
	epochMu.Lock()
	defer epochMu.Unlock()
	if epochFired {
		panic(fmt.Sprintf("store: RegisterCodeSource(%q) after the code epoch was computed; register from an init function", name))
	}
	epochExtras = append(epochExtras, epochSource{name, files})
}

// currentEpoch returns the epoch stamped on new records and required
// of served ones.
func currentEpoch() graph.Hash128 {
	epochOnce.Do(func() {
		epochMu.Lock()
		epochFired = true
		extras := append([]epochSource(nil), epochExtras...)
		epochMu.Unlock()
		sort.Slice(extras, func(i, j int) bool { return extras[i].name < extras[j].name })
		base := srcid.Epoch()
		h := graph.NewHasher128()
		h.Word(base[0])
		h.Word(base[1])
		srcid.HashPackage(&h, "internal/store", sourceFS)
		for _, e := range extras {
			srcid.HashPackage(&h, e.name, e.files)
		}
		codeEpoch = h.Sum()
	})
	return codeEpoch
}

// CodeEpoch returns the code-identity epoch stamped on every record.
func CodeEpoch() graph.Hash128 { return currentEpoch() }

// Package store is VSync's persistent verdict store: a disk-backed,
// content-addressed memo of AMC verdicts keyed by what a verification
// problem *is* — memory model, barrier-spec fingerprint and structural
// program fingerprint — rather than by what it is called. Verdicts are
// pure functions of those inputs (AMC is deterministic and exhaustive),
// so a verdict computed once is valid forever: the push-button descent,
// multi-pass ladders, CI runs and the suite orchestrator
// (vsync.VerifyMatrix) all consult the store before spending minutes of
// model checking on a problem some earlier process already decided.
//
// On-disk format: a single append-only log of self-delimiting binary
// records, each individually CRC-checksummed:
//
//	[4B magic "VSYV"][4B payload len][payload][4B IEEE CRC32(payload)]
//	payload = [1B version][16B key hash][1B verdict][2B name len][name]
//
// Append-only makes concurrent writers trivial (one mutex, one
// file-append per new verdict) and makes every historical verdict
// recoverable; the in-memory index is rebuilt by a forward scan on
// Open. The scan is corruption-tolerant: the first record whose magic,
// length bound or checksum fails ends the trusted prefix, everything
// after it is discarded, and the file is truncated back to the trusted
// length so subsequent appends extend a well-formed log. A torn tail
// write (crash mid-append, disk-full) therefore costs at most the
// records after the tear — never a wrong verdict. A non-empty file
// that does not start with the record magic was never a store and is
// refused outright, so a mistyped path cannot truncate a user's file.
//
// Invalidation is by construction rather than by command: change the
// program, the spec or the model and the key changes, so stale entries
// are simply never looked up again. Only decisive verdicts (OK,
// SafetyViolation, ATViolation) are stored; Error and Canceled carry no
// reusable information.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
)

// Key identifies one verification problem. Model is the memory-model
// name; Spec is the BarrierSpec fingerprint (zero for programs without
// a spec, e.g. litmus tests); Prog is the structural program
// fingerprint (vprog.Program.Fingerprint128) — never the program name.
type Key struct {
	Model string
	Spec  graph.Hash128
	Prog  graph.Hash128
}

// Hash returns the 128-bit content address of the key — the value
// records carry on disk and the index maps from.
func (k Key) Hash() graph.Hash128 {
	h := graph.NewHasher128()
	h.String(k.Model)
	h.Word(k.Spec[0])
	h.Word(k.Spec[1])
	h.Word(k.Prog[0])
	h.Word(k.Prog[1])
	return h.Sum()
}

const (
	recordMagic   = 0x56535956 // "VSYV" little-endian
	recordVersion = 1
	headerSize    = 8                   // magic + payload length
	payloadFixed  = 1 + 16 + 1 + 2      // version + key + verdict + name length
	maxPayload    = payloadFixed + 4096 // name length is bounded; anything bigger is corruption
)

// Stats is the cumulative accounting of one open store.
type Stats struct {
	Loaded    int // records trusted by the opening scan
	Corrupted int // bytes discarded by the opening scan (torn/corrupt tail)
	Hits      int // Lookup probes answered
	Misses    int // Lookup probes not answered
	Puts      int // Put calls with a decisive verdict
	Appended  int // records actually written (Puts minus duplicates)
	Conflicts int // decisive verdicts contradicting a stored one (kept out)
}

// Store is a disk-backed verdict memo. It is safe for concurrent use by
// any number of goroutines of one process; the on-disk log is owned by
// that process for the lifetime of the handle (there is no cross-
// process locking — share verdicts by sharing the file between runs,
// not between simultaneous writers).
type Store struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	index map[graph.Hash128]core.Verdict
	stats Stats
}

// Open opens (creating if necessary, including parent directories) the
// verdict log at path, scans its trusted prefix into the in-memory
// index, and truncates away any corrupt or torn tail.
func Open(path string) (*Store, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{f: f, path: path, index: make(map[graph.Hash128]core.Verdict)}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// load scans the log from the start, trusting records until the first
// malformed one, and truncates the file to the trusted length.
func (s *Store) load() error {
	data, err := io.ReadAll(s.f)
	if err != nil {
		return fmt.Errorf("store: reading %s: %w", s.path, err)
	}
	// A non-empty file that does not even begin with the record magic
	// was never a verdict store: refuse loudly instead of truncating a
	// file the caller mistyped the path of. (A store whose very first
	// append tore mid-record still carries the magic prefix and heals
	// through the normal corrupt-tail path below.)
	if len(data) >= 4 && binary.LittleEndian.Uint32(data) != recordMagic ||
		len(data) > 0 && len(data) < 4 {
		return fmt.Errorf("store: %s is not a verdict store (bad leading magic); refusing to truncate it — delete or move the file if it really is the store", s.path)
	}
	valid := 0
	for valid+headerSize <= len(data) {
		if binary.LittleEndian.Uint32(data[valid:]) != recordMagic {
			break
		}
		plen := int(binary.LittleEndian.Uint32(data[valid+4:]))
		if plen < payloadFixed || plen > maxPayload {
			break
		}
		end := valid + headerSize + plen + 4
		if end > len(data) {
			break // torn tail: header promises more bytes than exist
		}
		payload := data[valid+headerSize : valid+headerSize+plen]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[end-4:]) {
			break
		}
		if key, v, ok := decodePayload(payload); ok {
			s.index[key] = v
			s.stats.Loaded++
		}
		// An undecodable-but-checksummed payload (future version) is
		// skipped, not trusted and not fatal: the log stays appendable.
		valid = end
	}
	s.stats.Corrupted = len(data) - valid
	if s.stats.Corrupted > 0 {
		if err := s.f.Truncate(int64(valid)); err != nil {
			return fmt.Errorf("store: truncating corrupt tail of %s: %w", s.path, err)
		}
	}
	if _, err := s.f.Seek(int64(valid), io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// decodePayload parses one checksummed payload. ok is false for
// versions this build does not understand.
func decodePayload(p []byte) (key graph.Hash128, v core.Verdict, ok bool) {
	if p[0] != recordVersion {
		return key, v, false
	}
	key[0] = binary.LittleEndian.Uint64(p[1:])
	key[1] = binary.LittleEndian.Uint64(p[9:])
	v = core.Verdict(p[17])
	nameLen := int(binary.LittleEndian.Uint16(p[18:]))
	if payloadFixed+nameLen != len(p) {
		return key, v, false
	}
	return key, v, true
}

// encodeRecord builds the full on-disk record for one verdict.
func encodeRecord(key graph.Hash128, v core.Verdict, name string) []byte {
	if len(name) > maxPayload-payloadFixed {
		name = name[:maxPayload-payloadFixed]
	}
	plen := payloadFixed + len(name)
	rec := make([]byte, headerSize+plen+4)
	binary.LittleEndian.PutUint32(rec, recordMagic)
	binary.LittleEndian.PutUint32(rec[4:], uint32(plen))
	p := rec[headerSize : headerSize+plen]
	p[0] = recordVersion
	binary.LittleEndian.PutUint64(p[1:], key[0])
	binary.LittleEndian.PutUint64(p[9:], key[1])
	p[17] = byte(v)
	binary.LittleEndian.PutUint16(p[18:], uint16(len(name)))
	copy(p[payloadFixed:], name)
	binary.LittleEndian.PutUint32(rec[headerSize+plen:], crc32.ChecksumIEEE(p))
	return rec
}

// Lookup returns the stored verdict for k, counting the probe.
func (s *Store) Lookup(k Key) (core.Verdict, bool) {
	return s.lookupHash(k.Hash())
}

func (s *Store) lookupHash(h graph.Hash128) (core.Verdict, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.index[h]
	if ok {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	return v, ok
}

// Put records a decisive verdict for k, appending one log record; the
// name travels along for human-readable log inspection only. Indecisive
// verdicts (Error, Canceled) are dropped silently — they carry no
// reusable information. Re-putting an already-stored verdict is a
// no-op; putting a *different* decisive verdict for a stored key is
// refused with an error, because it means the keying broke (a
// fingerprint collision or a nondeterministic checker) and trusting
// either verdict would be unsound.
func (s *Store) Put(k Key, v core.Verdict, name string) error {
	if v != core.OK && v != core.SafetyViolation && v != core.ATViolation {
		return nil
	}
	h := k.Hash()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Puts++
	if prev, ok := s.index[h]; ok {
		if prev == v {
			return nil
		}
		s.stats.Conflicts++
		return fmt.Errorf("store: verdict conflict for %s (%s): stored %v, new %v", name, k.Model, prev, v)
	}
	if _, err := s.f.Write(encodeRecord(h, v, name)); err != nil {
		return fmt.Errorf("store: appending to %s: %w", s.path, err)
	}
	s.index[h] = v
	s.stats.Appended++
	return nil
}

// Len returns the number of indexed verdicts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats returns a snapshot of the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Path returns the log's file path.
func (s *Store) Path() string { return s.path }

// Close syncs and closes the log. The Store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

// Package store is VSync's persistent verdict store: a disk-backed,
// content-addressed memo of AMC verdicts keyed by what a verification
// problem *is* — memory model, barrier-spec fingerprint and structural
// program fingerprint — rather than by what it is called. Verdicts are
// pure functions of those inputs (AMC is deterministic and exhaustive),
// so a verdict computed once is valid forever: the push-button descent,
// multi-pass ladders, CI runs and the suite orchestrator
// (vsync.VerifyMatrix) all consult the store before spending minutes of
// model checking on a problem some earlier process already decided.
//
// # Sessions and the multi-writer protocol
//
// The store is a fleet asset: any number of processes — simultaneous
// vsyncsuite and vsyncopt invocations, parallel CI runners — share one
// live log through Session handles (OpenShared). The local protocol is
//
//   - appends are record-atomic: each verdict is one O_APPEND write of
//     a self-delimiting record, performed under a short-held advisory
//     lock on a sidecar file (<path>.lock), so concurrent appends can
//     interleave between records but never inside one;
//   - before appending, a session re-scans the log tail it has not yet
//     trusted, so cross-process duplicates become no-ops instead of
//     redundant records, and a torn tail left by a crashed writer is
//     healed (truncated) under the same lock no live writer can hold;
//   - Refresh performs that incremental tail re-scan on demand, so a
//     long-running reader observes verdicts written by concurrent
//     processes without reopening;
//   - rewrites (Compact, the open-time stale-budget compaction) go
//     through an atomic temp-file rename under the sidecar lock; other
//     live sessions notice the inode change at their next locked
//     operation and rescan from scratch.
//
// The sidecar lock survives renames of the data file, which is what
// makes compaction safe against concurrent appenders. On platforms
// without flock the protocol is unenforced (documented on lockFile) and
// simultaneous writers risk interleaving — the pre-session contract.
//
// # On-disk format
//
// A single append-only log of self-delimiting binary records, each
// individually CRC-checksummed:
//
//	[4B magic "VSYV"][4B payload len][payload][4B IEEE CRC32(payload)]
//	payload = [1B version][16B code epoch][16B key hash][1B verdict]
//	          [2B name len][name]
//
// Records are content-addressed and order-independent, which makes
// Merge a dedup-union: a record is identified by (code epoch, key
// hash), two stores merge by appending the records the destination has
// not seen, and provenance (the writing build's epoch, the
// human-readable name) rides along unchanged.
//
// The load scan is corruption-tolerant: the first record whose magic,
// length bound or checksum fails ends the trusted prefix, everything
// after it is discarded, and the file is truncated back to the trusted
// length so subsequent appends extend a well-formed log. A torn tail
// write (crash mid-append, disk-full) therefore costs at most the
// records after the tear — never a wrong verdict; that includes a tear
// inside the very first record's magic. Because every append first
// heals the tail under the lock, a good record is never written after
// a tear, so the no-resynchronization scan loses nothing under the
// protocol. A non-empty file that does not start with (a prefix of)
// the record magic was never a store and is refused outright, so a
// mistyped path cannot truncate a user's file.
//
// # Invalidation
//
// Invalidation is by construction rather than by command: change the
// program, the spec or the model and the key changes, so stale entries
// are simply never looked up again. Change any verification-relevant
// *source code* and the code epoch changes: every record carries the
// epoch (see epoch.go) of the binary that wrote it, and lookups serve
// only records matching this build's epoch. Foreign-epoch records are
// retained (a bisect that rebuilds an old epoch flips straight back to
// a warm store) up to a byte budget; beyond it the oldest are
// compacted away, so the log stays bounded however many code commits
// the CI cache survives. Only decisive verdicts (OK, SafetyViolation,
// ATViolation) are stored; Error and Canceled carry no reusable
// information.
//
// # The remote tier
//
// A Session may additionally be backed by a remote verdict service
// (cmd/vsyncstored) via Options.Remote: lookups then go memory → local
// log → remote GET (remote hits are promoted into the local log), and
// decisive local appends are pushed to the service in idempotent
// batches. The remote tier is strictly best-effort — an unreachable
// service degrades the session to local-only with logged
// backoff-and-retry, and never fails a verification run.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/graph"
)

// Key identifies one verification problem. Model is the memory-model
// name; Spec is the BarrierSpec fingerprint (zero for programs without
// a spec, e.g. litmus tests); Prog is the structural program
// fingerprint (vprog.Program.Fingerprint128) — never the program name.
type Key struct {
	Model string
	Spec  graph.Hash128
	Prog  graph.Hash128
}

// Hash returns the 128-bit content address of the key — the value
// records carry on disk and the index maps from.
func (k Key) Hash() graph.Hash128 {
	h := graph.NewHasher128()
	h.String(k.Model)
	h.Word(k.Spec[0])
	h.Word(k.Spec[1])
	h.Word(k.Prog[0])
	h.Word(k.Prog[1])
	return h.Sum()
}

const (
	recordMagic   = 0x56535956 // "VSYV" little-endian
	recordVersion = 2
	headerSize    = 8                   // magic + payload length
	payloadFixed  = 1 + 16 + 16 + 1 + 2 // version + code epoch + key + verdict + name length
	minPayload    = 1                   // a version byte; older formats were shorter than payloadFixed
	maxPayload    = payloadFixed + 4096 // name length is bounded; anything bigger is corruption

	// remoteBatchSize is how many pending verdicts accumulate before a
	// batched remote PUT is fired; Close/Flush drain the remainder.
	remoteBatchSize = 16

	// remotePendingMax bounds the pending queue: requeued batches from a
	// long service outage accumulate here, and beyond the cap the oldest
	// records are dropped (counted as RemoteDropped) — the local log has
	// them either way, so the loss is only a cold remote cache.
	remotePendingMax = 4096
)

// staleRetainBytes bounds how much foreign-epoch (or foreign-version)
// history one log retains: enough for a dozen-plus full corpora so
// bisects and branch switches flip back to warm stores, small enough
// that the CI cache artifact and the open-time scan stay trivial. A
// variable so tests can shrink it.
var staleRetainBytes = 1 << 20

// recordID is a record's content address: the code epoch of the build
// that wrote it plus the key hash. Merge dedups on this identity, and
// the index maps it so foreign-epoch history is queryable (the remote
// service stores records for every client epoch).
type recordID struct {
	epoch, key graph.Hash128
}

// entry is one indexed verdict with its human-readable provenance.
type entry struct {
	v    core.Verdict
	name string
}

// Stats is the cumulative accounting of one open session.
type Stats struct {
	Loaded    int // records trusted by the opening scan
	Stale     int // well-formed records from another code epoch or record version: not served, retained up to a budget
	Corrupted int // bytes discarded by scans (torn/corrupt tails, healed)
	Refreshed int // current-epoch records observed by tail re-scans after open (written by concurrent processes)
	Hits      int // Lookup probes answered (local or remote)
	Misses    int // Lookup probes not answered
	Puts      int // Put calls with a decisive verdict
	Appended  int // records actually written (puts minus duplicates, plus merges and remote promotions)
	Conflicts int // decisive verdicts contradicting a stored one (kept out)

	RemoteHits     int // lookups served by the remote tier (and promoted locally)
	RemotePuts     int // records acknowledged by batched remote PUTs
	RemoteFailures int // remote calls that failed (degraded to local-only)
	RemoteRequeued int // records of failed PUT batches returned to the pending queue
	RemoteDropped  int // pending records dropped (oldest first) at the requeue cap
}

// Options configures OpenShared beyond the log path.
type Options struct {
	// Remote is the base URL of a vsyncstored verdict service (e.g.
	// "http://stored.internal:8372"); empty means local-only. The
	// remote tier is best-effort: an unreachable service is retried
	// with exponential backoff and never fails a run.
	Remote string
	// RemoteTimeout bounds each remote call (default 2s).
	RemoteTimeout time.Duration
	// Logf receives degradation and retry messages ("remote
	// unreachable, continuing local-only"); nil uses log.Printf.
	Logf func(format string, args ...any)
}

// Session is a shared handle on a verdict log. Any number of sessions —
// across goroutines and across processes — may read and append one log
// concurrently; see the package comment for the protocol. Lookup serves
// from the in-memory index (the trusted prefix as of the last scan);
// call Refresh to observe records appended by other processes since.
type Session struct {
	mu      sync.Mutex
	f       *os.File // data log, O_APPEND: every write lands at EOF
	lockf   *os.File // sidecar <path>.lock; flocked briefly per append/scan
	fi      os.FileInfo
	path    string
	scanned int64 // end of the trusted prefix; everything before it is indexed
	index   map[recordID]entry
	stats   Stats

	staleBytes int64 // foreign-epoch/version bytes as of the last full scan

	remote   *remoteTier
	pending  []WireRecord
	inflight sync.WaitGroup
}

// Store is the session type's pre-sharing name.
//
// Deprecated: use Session. The exclusive single-owner Store was
// replaced by shared multi-writer sessions; the alias keeps old callers
// compiling.
type Store = Session

// OpenShared opens (creating if necessary, including parent
// directories) a shared session on the verdict log at path. Concurrent
// sessions of any number of processes may share the log; opts may be
// nil for a local-only session with defaults.
func OpenShared(path string, opts *Options) (*Session, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	lockf, err := os.OpenFile(path+".lock", os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Session{path: path, lockf: lockf}
	if opts != nil && opts.Remote != "" {
		s.remote = newRemoteTier(opts.Remote, opts.RemoteTimeout, opts.Logf)
	}
	err = s.withFileLock(func() error {
		if err := s.openLocked(); err != nil {
			return err
		}
		if s.staleBytes > int64(staleRetainBytes) {
			// Over the retention budget: compact the oldest foreign
			// records away. Compaction is an optimization, not a
			// correctness requirement, so a failure (disk full, exotic
			// filesystem) falls through with the full history retained.
			s.compactLocked()
		}
		return nil
	})
	if err != nil {
		lockf.Close()
		if s.f != nil {
			s.f.Close()
		}
		return nil, err
	}
	return s, nil
}

// Open opens a shared session on the verdict log at path.
//
// Deprecated: use OpenShared. Open used to take an exclusive flock and
// refuse a second process; the log is now multi-writer and Open is an
// alias for OpenShared(path, nil).
func Open(path string) (*Session, error) { return OpenShared(path, nil) }

// withFileLock runs fn holding the cross-process append lock. The lock
// is held briefly (a scan, one record write); blocking is the right
// behavior for contenders.
func (s *Session) withFileLock(fn func() error) error {
	if err := lockFile(s.lockf); err != nil {
		return fmt.Errorf("store: locking %s: %w", s.path, err)
	}
	defer unlockFile(s.lockf)
	return fn()
}

// parsedRecord is one well-formed record found by scanLog.
type parsedRecord struct {
	start, end int // byte span within the scanned slice
	id         recordID
	v          core.Verdict
	name       string
	decodable  bool // false: CRC-valid but a record version this build cannot parse
}

// scanLog walks data from its start, returning every well-formed record
// and the trusted byte count. The first record whose magic, length
// bound or checksum fails ends the scan — a mid-log tear must not
// resynchronize on garbage-controlled framing.
func scanLog(data []byte) ([]parsedRecord, int) {
	var recs []parsedRecord
	valid := 0
	for valid+headerSize <= len(data) {
		if binary.LittleEndian.Uint32(data[valid:]) != recordMagic {
			break
		}
		// The length bound is version-agnostic: a checksummed record of
		// an older (shorter) format must scan as a stale record to
		// retain, not break the loop as a corrupt tail — that would
		// truncate a v1 user's entire history on upgrade.
		plen := int(binary.LittleEndian.Uint32(data[valid+4:]))
		if plen < minPayload || plen > maxPayload {
			break
		}
		end := valid + headerSize + plen + 4
		if end > len(data) {
			break // torn tail: header promises more bytes than exist
		}
		payload := data[valid+headerSize : valid+headerSize+plen]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[end-4:]) {
			break
		}
		r := parsedRecord{start: valid, end: end}
		r.id.epoch, r.id.key, r.v, r.name, r.decodable = decodePayload(payload)
		recs = append(recs, r)
		valid = end
	}
	return recs, valid
}

// openLocked (re)opens the log from its path and rebuilds the index
// from a full scan, truncating away any corrupt or torn tail. Caller
// holds mu (or is constructing) and the file lock. Loaded/Stale/
// staleBytes describe the current log and are recomputed; cumulative
// counters (Hits, Puts, ...) are preserved.
func (s *Session) openLocked() error {
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	f, err := os.OpenFile(s.path, os.O_RDWR|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return fmt.Errorf("store: reading %s: %w", s.path, err)
	}
	// A non-empty file that does not begin with (a prefix of) the
	// record magic was never a verdict store: refuse loudly instead of
	// truncating a file the caller mistyped the path of. A store whose
	// very first append tore mid-record still carries the magic prefix
	// — even if fewer than 4 bytes of it landed — and heals through the
	// normal corrupt-tail path below.
	if len(data) > 0 {
		var magic [4]byte
		binary.LittleEndian.PutUint32(magic[:], recordMagic)
		n := min(len(data), len(magic))
		if !bytes.Equal(data[:n], magic[:n]) {
			f.Close()
			return fmt.Errorf("store: %s is not a verdict store (bad leading magic); refusing to truncate it — delete or move the file if it really is the store", s.path)
		}
	}
	recs, valid := scanLog(data)
	s.index = make(map[recordID]entry, len(recs))
	s.stats.Loaded, s.stats.Stale, s.staleBytes = 0, 0, 0
	cur := currentEpoch()
	for _, r := range recs {
		if r.decodable && r.id.epoch == cur {
			s.stats.Loaded++
		} else {
			// A well-formed record from another record version or code
			// epoch cannot be served by this build, but it is not
			// garbage: a bisect or branch switch may build the epoch
			// that wrote it again tomorrow, and deleting it would
			// silently destroy minutes of AMC work. Retain it — up to
			// staleRetainBytes, enforced by compactLocked.
			s.stats.Stale++
			s.staleBytes += int64(r.end - r.start)
		}
		if r.decodable {
			if _, dup := s.index[r.id]; !dup {
				// First record wins: the log is authoritative in write
				// order, matching Put's conflict stance.
				s.index[r.id] = entry{r.v, r.name}
			}
		}
	}
	s.f = f
	s.scanned = int64(valid)
	if corrupt := len(data) - valid; corrupt > 0 {
		if err := f.Truncate(s.scanned); err != nil {
			return fmt.Errorf("store: truncating corrupt tail of %s: %w", s.path, err)
		}
		s.stats.Corrupted += corrupt
	}
	s.fi, err = f.Stat()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// refreshLocked brings the index up to date with the on-disk log:
// an incremental scan of the unexamined tail in the common case, a full
// reopen when the file was replaced (another process compacted it) or
// truncated beneath the trusted prefix. A torn tail is healed — the
// caller holds the append lock, so torn bytes can only be a crashed
// writer's leftovers, never a live writer mid-record. Caller holds mu
// and the file lock.
func (s *Session) refreshLocked() error {
	pfi, err := os.Stat(s.path)
	if err != nil || s.fi == nil || !os.SameFile(pfi, s.fi) {
		return s.openLocked()
	}
	size := pfi.Size()
	if size < s.scanned {
		return s.openLocked()
	}
	if size == s.scanned {
		return nil
	}
	buf := make([]byte, size-s.scanned)
	if _, err := io.ReadFull(io.NewSectionReader(s.f, s.scanned, int64(len(buf))), buf); err != nil {
		return fmt.Errorf("store: reading tail of %s: %w", s.path, err)
	}
	recs, valid := scanLog(buf)
	cur := currentEpoch()
	for _, r := range recs {
		if !r.decodable {
			s.stats.Stale++
			s.staleBytes += int64(r.end - r.start)
			continue
		}
		if _, dup := s.index[r.id]; dup {
			continue
		}
		s.index[r.id] = entry{r.v, r.name}
		if r.id.epoch == cur {
			s.stats.Refreshed++
		} else {
			s.stats.Stale++
			s.staleBytes += int64(r.end - r.start)
		}
	}
	s.scanned += int64(valid)
	if torn := len(buf) - valid; torn > 0 {
		if err := s.f.Truncate(s.scanned); err == nil {
			s.stats.Corrupted += torn
		}
	}
	return nil
}

// Refresh re-scans the log tail, observing records appended by
// concurrent processes since the last scan (or open). It returns how
// many new current-epoch verdicts became visible. Long-running readers
// (the suite orchestrator between cells) call this to share a live
// store with simultaneous writers.
func (s *Session) Refresh() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return 0, fmt.Errorf("store: %s: Refresh after Close", s.path)
	}
	before := s.stats.Refreshed
	err := s.withFileLock(s.refreshLocked)
	return s.stats.Refreshed - before, err
}

// decodePayload parses one checksummed payload. ok is false for
// versions (and their payload shapes) this build does not understand;
// the caller treats those as stale, like a foreign code epoch. A
// record whose verdict byte is not a decisive verdict is likewise
// refused: Put never writes one, so such a record is damage that
// happened to keep a valid CRC (or a forged file), and serving it
// would hand callers a verdict value the checker cannot produce.
func decodePayload(p []byte) (epoch, key graph.Hash128, v core.Verdict, name string, ok bool) {
	if len(p) < payloadFixed || p[0] != recordVersion {
		return epoch, key, v, "", false
	}
	epoch[0] = binary.LittleEndian.Uint64(p[1:])
	epoch[1] = binary.LittleEndian.Uint64(p[9:])
	key[0] = binary.LittleEndian.Uint64(p[17:])
	key[1] = binary.LittleEndian.Uint64(p[25:])
	v = core.Verdict(p[33])
	if !decisive(v) {
		return epoch, key, 0, "", false
	}
	nameLen := int(binary.LittleEndian.Uint16(p[34:]))
	if payloadFixed+nameLen != len(p) {
		return epoch, key, 0, "", false
	}
	return epoch, key, v, string(p[payloadFixed:]), true
}

// encodeRecord builds the full on-disk record for one verdict.
func encodeRecord(epoch, key graph.Hash128, v core.Verdict, name string) []byte {
	if len(name) > maxPayload-payloadFixed {
		name = name[:maxPayload-payloadFixed]
	}
	plen := payloadFixed + len(name)
	rec := make([]byte, headerSize+plen+4)
	binary.LittleEndian.PutUint32(rec, recordMagic)
	binary.LittleEndian.PutUint32(rec[4:], uint32(plen))
	p := rec[headerSize : headerSize+plen]
	p[0] = recordVersion
	binary.LittleEndian.PutUint64(p[1:], epoch[0])
	binary.LittleEndian.PutUint64(p[9:], epoch[1])
	binary.LittleEndian.PutUint64(p[17:], key[0])
	binary.LittleEndian.PutUint64(p[25:], key[1])
	p[33] = byte(v)
	binary.LittleEndian.PutUint16(p[34:], uint16(len(name)))
	copy(p[payloadFixed:], name)
	binary.LittleEndian.PutUint32(rec[headerSize+plen:], crc32.ChecksumIEEE(p))
	return rec
}

// decisive reports whether v carries reusable information worth
// persisting; Error and Canceled do not.
func decisive(v core.Verdict) bool {
	return v == core.OK || v == core.SafetyViolation || v == core.ATViolation
}

// Lookup returns the stored verdict for k, counting the probe. The
// probe goes memory (the indexed local log) first; on a miss with a
// remote tier configured it additionally asks the verdict service, and
// a remote hit is promoted into the local log so the next process is
// warm without the network.
func (s *Session) Lookup(k Key) (core.Verdict, bool) {
	return s.lookupHash(k.Hash())
}

func (s *Session) lookupHash(h graph.Hash128) (core.Verdict, bool) {
	id := recordID{currentEpoch(), h}
	s.mu.Lock()
	if e, ok := s.index[id]; ok {
		s.stats.Hits++
		s.mu.Unlock()
		return e.v, true
	}
	r := s.remote
	s.mu.Unlock()
	if r != nil {
		if v, name, ok := s.remoteGet(id); ok {
			s.mu.Lock()
			s.stats.Hits++
			s.stats.RemoteHits++
			if s.f != nil {
				// Best-effort promotion; the verdict is served either way.
				s.putLocked(id, v, name, false)
			}
			s.mu.Unlock()
			return v, true
		}
	}
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
	return 0, false
}

// LookupEpoch returns the stored verdict and name for an explicit
// (epoch, key hash) identity — the remote service's read path, which
// must answer clients of any build, not just this binary's epoch.
func (s *Session) LookupEpoch(epoch, key graph.Hash128) (core.Verdict, string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.index[recordID{epoch, key}]
	if ok {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	return e.v, e.name, ok
}

// ErrConflict marks a Put whose decisive verdict contradicts the one
// already stored for its key. Callers distinguish it (errors.Is) from
// plain append failures: a conflict means the keying broke and neither
// verdict can be trusted; an I/O failure taints nothing — the verdict
// is sound, it just was not persisted.
var ErrConflict = errors.New("verdict conflict")

// Put records a decisive verdict for k, appending one log record; the
// name travels along for human-readable log inspection only. Indecisive
// verdicts (Error, Canceled) are dropped silently — they carry no
// reusable information. Re-putting an already-stored verdict is a
// no-op (including one another process appended concurrently: the
// pre-append tail re-scan catches it); putting a *different* decisive
// verdict for a stored key is refused with an error wrapping
// ErrConflict, because it means the keying broke (a fingerprint
// collision or a nondeterministic checker) and trusting either verdict
// would be unsound.
func (s *Session) Put(k Key, v core.Verdict, name string) error {
	if !decisive(v) {
		return nil
	}
	id := recordID{currentEpoch(), k.Hash()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("store: %s: Put after Close", s.path)
	}
	s.stats.Puts++
	return s.putLocked(id, v, name, true)
}

// PutRaw records a decisive verdict under an explicit (epoch, key hash)
// identity — the remote service's ingest path, which must store records
// stamped with the *client's* epoch verbatim. It never pushes to a
// remote tier (the service is the remote tier).
func (s *Session) PutRaw(epoch, key graph.Hash128, v core.Verdict, name string) error {
	if !decisive(v) {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("store: %s: Put after Close", s.path)
	}
	s.stats.Puts++
	return s.putLocked(recordID{epoch, key}, v, name, false)
}

// putLocked appends one record under the cross-process lock, after a
// tail re-scan so concurrent processes' appends dedup instead of
// duplicating. Caller holds mu.
func (s *Session) putLocked(id recordID, v core.Verdict, name string, push bool) error {
	// Fast path: the index only ever grows, so an in-memory duplicate
	// or conflict needs no file lock.
	if prev, ok := s.index[id]; ok {
		return s.dupOrConflict(prev.v, v, name)
	}
	err := s.withFileLock(func() error {
		if err := s.refreshLocked(); err != nil {
			return err
		}
		if prev, ok := s.index[id]; ok {
			return s.dupOrConflict(prev.v, v, name)
		}
		rec := encodeRecord(id.epoch, id.key, v, name)
		if err := faultinject.Fire("store.append"); err != nil {
			return fmt.Errorf("store: appending to %s: %w", s.path, err)
		}
		if err := faultinject.Fire("store.append.torn"); err != nil {
			// Crash simulation: half a record lands and the "process" dies
			// before healing — exactly what a kill -9 mid-append leaves.
			// The tear stays on disk; the next locked operation's tail
			// re-scan truncates it.
			s.f.Write(rec[:headerSize+len(rec)/3])
			return fmt.Errorf("store: appending to %s: %w", s.path, err)
		}
		if n, err := s.f.Write(rec); err != nil {
			if n > 0 {
				// Partial append: heal our own torn tail while we still
				// hold the lock.
				s.f.Truncate(s.scanned)
			}
			return fmt.Errorf("store: appending to %s: %w", s.path, err)
		}
		s.index[id] = entry{v, name}
		s.scanned += int64(len(rec))
		s.stats.Appended++
		if id.epoch != currentEpoch() {
			s.stats.Stale++
			s.staleBytes += int64(len(rec))
		}
		return nil
	})
	if err == nil && push {
		s.enqueueRemoteLocked(id, v, name)
	}
	return err
}

// dupOrConflict resolves a put against an already-indexed verdict:
// agreement is a no-op, disagreement is the unsound-rekey sentinel.
func (s *Session) dupOrConflict(prev, v core.Verdict, name string) error {
	if prev == v {
		return nil
	}
	s.stats.Conflicts++
	return fmt.Errorf("store: %w for %s: stored %v, new %v", ErrConflict, name, prev, v)
}

// Len returns the number of indexed records (all epochs).
func (s *Session) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats returns a snapshot of the session's accounting.
func (s *Session) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Path returns the log's file path.
func (s *Session) Path() string { return s.path }

// Close flushes the remote tier (best-effort), syncs and closes the
// log, and releases the sidecar lock handle. The Session must not be
// used after (a late Put fails cleanly).
func (s *Session) Close() error {
	s.Flush()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	if s.lockf != nil {
		s.lockf.Close()
		s.lockf = nil
	}
	return err
}

// Package store is VSync's persistent verdict store: a disk-backed,
// content-addressed memo of AMC verdicts keyed by what a verification
// problem *is* — memory model, barrier-spec fingerprint and structural
// program fingerprint — rather than by what it is called. Verdicts are
// pure functions of those inputs (AMC is deterministic and exhaustive),
// so a verdict computed once is valid forever: the push-button descent,
// multi-pass ladders, CI runs and the suite orchestrator
// (vsync.VerifyMatrix) all consult the store before spending minutes of
// model checking on a problem some earlier process already decided.
//
// On-disk format: a single append-only log of self-delimiting binary
// records, each individually CRC-checksummed:
//
//	[4B magic "VSYV"][4B payload len][payload][4B IEEE CRC32(payload)]
//	payload = [1B version][16B code epoch][16B key hash][1B verdict]
//	          [2B name len][name]
//
// Append-only makes concurrent writers trivial (one mutex, one
// file-append per new verdict) and makes every historical verdict
// recoverable; the in-memory index is rebuilt by a forward scan on
// Open. The scan is corruption-tolerant: the first record whose magic,
// length bound or checksum fails ends the trusted prefix, everything
// after it is discarded, and the file is truncated back to the trusted
// length so subsequent appends extend a well-formed log. A torn tail
// write (crash mid-append, disk-full) therefore costs at most the
// records after the tear — never a wrong verdict; that includes a tear
// inside the very first record's magic. A non-empty file that does not
// start with (a prefix of) the record magic was never a store and is
// refused outright, so a mistyped path cannot truncate a user's file.
//
// Invalidation is by construction rather than by command: change the
// program, the spec or the model and the key changes, so stale entries
// are simply never looked up again. Change any verification-relevant
// *source code* and the code epoch changes: every record carries the
// epoch (see epoch.go — a hash of the compiled-in sources of the
// checker, the program constructors, and every key-handling package
// including this one) of the binary that wrote it, and load indexes
// only records matching this build's epoch. Program
// fingerprints witness one sequential execution and cannot see
// contended-path code, so without the epoch a cross-commit edit to a
// lock's slow path would leave keys unchanged and a store cached from
// an earlier commit (CI does exactly this) would serve stale verdicts.
// Foreign-epoch records are retained (a bisect that rebuilds an old
// epoch flips straight back to a warm store) up to a byte budget;
// beyond it the oldest are compacted away on open, so the log stays
// bounded however many code commits the CI cache survives. Only
// decisive verdicts (OK, SafetyViolation, ATViolation) are stored;
// Error and Canceled carry no reusable information.
package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
)

// Key identifies one verification problem. Model is the memory-model
// name; Spec is the BarrierSpec fingerprint (zero for programs without
// a spec, e.g. litmus tests); Prog is the structural program
// fingerprint (vprog.Program.Fingerprint128) — never the program name.
type Key struct {
	Model string
	Spec  graph.Hash128
	Prog  graph.Hash128
}

// Hash returns the 128-bit content address of the key — the value
// records carry on disk and the index maps from.
func (k Key) Hash() graph.Hash128 {
	h := graph.NewHasher128()
	h.String(k.Model)
	h.Word(k.Spec[0])
	h.Word(k.Spec[1])
	h.Word(k.Prog[0])
	h.Word(k.Prog[1])
	return h.Sum()
}

const (
	recordMagic   = 0x56535956 // "VSYV" little-endian
	recordVersion = 2
	headerSize    = 8                   // magic + payload length
	payloadFixed  = 1 + 16 + 16 + 1 + 2 // version + code epoch + key + verdict + name length
	minPayload    = 1                   // a version byte; older formats were shorter than payloadFixed
	maxPayload    = payloadFixed + 4096 // name length is bounded; anything bigger is corruption
)

// staleRetainBytes bounds how much foreign-epoch (or foreign-version)
// history one log retains: enough for a dozen-plus full corpora so
// bisects and branch switches flip back to warm stores, small enough
// that the CI cache artifact and the open-time scan stay trivial. A
// variable so tests can shrink it.
var staleRetainBytes = 1 << 20

// Stats is the cumulative accounting of one open store.
type Stats struct {
	Loaded    int // records trusted by the opening scan
	Stale     int // well-formed records from another code epoch or record version: not served, retained up to a budget
	Corrupted int // bytes discarded by the opening scan (torn/corrupt tail)
	Hits      int // Lookup probes answered
	Misses    int // Lookup probes not answered
	Puts      int // Put calls with a decisive verdict
	Appended  int // records actually written (Puts minus duplicates)
	Conflicts int // decisive verdicts contradicting a stored one (kept out)
}

// Store is a disk-backed verdict memo. It is safe for concurrent use by
// any number of goroutines of one process; the on-disk log is owned by
// that process for the lifetime of the handle. Where the platform
// supports it, Open enforces the single-owner contract with an
// exclusive advisory flock, so a second process opening the same path
// fails with a "store in use" error instead of interleaving its
// truncate-and-append cycle with the owner's — share verdicts by
// sharing the file between runs, not between simultaneous writers.
type Store struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	index map[graph.Hash128]core.Verdict
	stats Stats
}

// Open opens (creating if necessary, including parent directories) the
// verdict log at path, scans its trusted prefix into the in-memory
// index, and truncates away any corrupt or torn tail.
func Open(path string) (*Store, error) {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := lockFile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %s is in use by another process (the log supports one owner at a time; rerun when the other process exits): %w", path, err)
	}
	s := &Store{f: f, path: path, index: make(map[graph.Hash128]core.Verdict)}
	if err := s.load(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// load scans the log from the start, trusting records until the first
// malformed one, and truncates the file to the trusted length.
func (s *Store) load() error {
	data, err := io.ReadAll(s.f)
	if err != nil {
		return fmt.Errorf("store: reading %s: %w", s.path, err)
	}
	// A non-empty file that does not begin with (a prefix of) the
	// record magic was never a verdict store: refuse loudly instead of
	// truncating a file the caller mistyped the path of. A store whose
	// very first append tore mid-record still carries the magic prefix
	// — even if fewer than 4 bytes of it landed — and heals through the
	// normal corrupt-tail path below.
	if len(data) > 0 {
		var magic [4]byte
		binary.LittleEndian.PutUint32(magic[:], recordMagic)
		n := min(len(data), len(magic))
		if !bytes.Equal(data[:n], magic[:n]) {
			return fmt.Errorf("store: %s is not a verdict store (bad leading magic); refusing to truncate it — delete or move the file if it really is the store", s.path)
		}
	}
	valid := 0
	type recSpan struct {
		start, end int
		live       bool
	}
	var spans []recSpan
	staleBytes := 0
	for valid+headerSize <= len(data) {
		if binary.LittleEndian.Uint32(data[valid:]) != recordMagic {
			break
		}
		// The length bound is version-agnostic: a checksummed record of
		// an older (shorter) format must scan as a stale record to
		// retain, not break the loop as a corrupt tail — that would
		// truncate a v1 user's entire history on upgrade.
		plen := int(binary.LittleEndian.Uint32(data[valid+4:]))
		if plen < minPayload || plen > maxPayload {
			break
		}
		end := valid + headerSize + plen + 4
		if end > len(data) {
			break // torn tail: header promises more bytes than exist
		}
		payload := data[valid+headerSize : valid+headerSize+plen]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(data[end-4:]) {
			break
		}
		if epoch, key, v, ok := decodePayload(payload); ok && epoch == currentEpoch() {
			s.index[key] = v
			s.stats.Loaded++
			spans = append(spans, recSpan{valid, end, true})
		} else {
			// A well-formed record from another record version or code
			// epoch cannot be served by this build, but it is not
			// garbage: a bisect or branch switch may build the epoch
			// that wrote it again tomorrow, and deleting it would
			// silently destroy minutes of AMC work. Retain it — up to
			// staleRetainBytes; beyond the budget the oldest foreign
			// records are compacted away so a CI-restored store stays
			// bounded instead of growing by a corpus per code commit.
			s.stats.Stale++
			staleBytes += end - valid
			spans = append(spans, recSpan{valid, end, false})
		}
		valid = end
	}
	s.stats.Corrupted = len(data) - valid
	if staleBytes > staleRetainBytes {
		// Over budget: drop the oldest foreign records (log order is
		// write order). The rewrite is atomic — temp file, then rename
		// — so a crash at any instant leaves either the old log or the
		// complete new one; records that were intact before Open can
		// never be lost to a half-finished rewrite. Compaction is an
		// optimization, not a correctness requirement, so a failure
		// (disk full, exotic filesystem) falls through to the normal
		// open path with the full history retained.
		keep := spans[:0]
		kept := 0
		for _, sp := range spans {
			if !sp.live && staleBytes > staleRetainBytes {
				staleBytes -= sp.end - sp.start
				continue
			}
			keep = append(keep, sp)
			if !sp.live {
				kept++
			}
		}
		var buf []byte
		for _, sp := range keep {
			buf = append(buf, data[sp.start:sp.end]...)
		}
		if err := s.swapInCompacted(buf); err == nil {
			s.stats.Stale = kept // only what actually survived
			return nil
		} else if s.f == nil {
			// The no-flock path closed the old handle and could not get
			// it back; there is no store to fall through to.
			return fmt.Errorf("store: compacting %s: %w", s.path, err)
		}
	}
	if s.stats.Corrupted > 0 {
		if err := s.f.Truncate(int64(valid)); err != nil {
			return fmt.Errorf("store: truncating corrupt tail of %s: %w", s.path, err)
		}
	}
	if _, err := s.f.Seek(int64(valid), io.SeekStart); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// swapInCompacted atomically replaces the log with content: the new
// file is written and synced beside the log, flocked *before* the
// rename publishes it (so there is no instant at which another process
// could grab the path unlocked), renamed over the log, and adopted as
// the store's handle. On any error the original log is untouched.
func (s *Store) swapInCompacted(content []byte) error {
	tmpPath := s.path + ".compact"
	tf, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		tf.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := lockFile(tf); err != nil {
		return fail(err)
	}
	if _, err := tf.Write(content); err != nil {
		return fail(err)
	}
	if err := tf.Sync(); err != nil {
		return fail(err)
	}
	if !haveFlock {
		// No advisory locks on this platform, so keeping the old handle
		// open buys no exclusion — and Windows refuses to rename over an
		// open file, which would otherwise make the retention budget
		// silently unenforceable. Close first; restore on failure so the
		// caller still has a working (if uncompacted) store.
		s.f.Close()
		s.f = nil
		if err := os.Rename(tmpPath, s.path); err != nil {
			f, rerr := os.OpenFile(s.path, os.O_RDWR, 0o644)
			if rerr == nil {
				s.f = f // original log intact; compaction skipped
			}
			return fail(err)
		}
		s.f = tf
		return nil
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return fail(err)
	}
	s.f.Close() // old inode and its lock; tf already holds the new one
	s.f = tf    // offset is at end, ready to append
	return nil
}

// decodePayload parses one checksummed payload. ok is false for
// versions (and their payload shapes) this build does not understand;
// the caller treats those as stale, like a foreign code epoch.
func decodePayload(p []byte) (epoch, key graph.Hash128, v core.Verdict, ok bool) {
	if len(p) < payloadFixed || p[0] != recordVersion {
		return epoch, key, v, false
	}
	epoch[0] = binary.LittleEndian.Uint64(p[1:])
	epoch[1] = binary.LittleEndian.Uint64(p[9:])
	key[0] = binary.LittleEndian.Uint64(p[17:])
	key[1] = binary.LittleEndian.Uint64(p[25:])
	v = core.Verdict(p[33])
	nameLen := int(binary.LittleEndian.Uint16(p[34:]))
	if payloadFixed+nameLen != len(p) {
		return epoch, key, v, false
	}
	return epoch, key, v, true
}

// encodeRecord builds the full on-disk record for one verdict.
func encodeRecord(epoch, key graph.Hash128, v core.Verdict, name string) []byte {
	if len(name) > maxPayload-payloadFixed {
		name = name[:maxPayload-payloadFixed]
	}
	plen := payloadFixed + len(name)
	rec := make([]byte, headerSize+plen+4)
	binary.LittleEndian.PutUint32(rec, recordMagic)
	binary.LittleEndian.PutUint32(rec[4:], uint32(plen))
	p := rec[headerSize : headerSize+plen]
	p[0] = recordVersion
	binary.LittleEndian.PutUint64(p[1:], epoch[0])
	binary.LittleEndian.PutUint64(p[9:], epoch[1])
	binary.LittleEndian.PutUint64(p[17:], key[0])
	binary.LittleEndian.PutUint64(p[25:], key[1])
	p[33] = byte(v)
	binary.LittleEndian.PutUint16(p[34:], uint16(len(name)))
	copy(p[payloadFixed:], name)
	binary.LittleEndian.PutUint32(rec[headerSize+plen:], crc32.ChecksumIEEE(p))
	return rec
}

// Lookup returns the stored verdict for k, counting the probe.
func (s *Store) Lookup(k Key) (core.Verdict, bool) {
	return s.lookupHash(k.Hash())
}

func (s *Store) lookupHash(h graph.Hash128) (core.Verdict, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.index[h]
	if ok {
		s.stats.Hits++
	} else {
		s.stats.Misses++
	}
	return v, ok
}

// ErrConflict marks a Put whose decisive verdict contradicts the one
// already stored for its key. Callers distinguish it (errors.Is) from
// plain append failures: a conflict means the keying broke and neither
// verdict can be trusted; an I/O failure taints nothing — the verdict
// is sound, it just was not persisted.
var ErrConflict = errors.New("verdict conflict")

// Put records a decisive verdict for k, appending one log record; the
// name travels along for human-readable log inspection only. Indecisive
// verdicts (Error, Canceled) are dropped silently — they carry no
// reusable information. Re-putting an already-stored verdict is a
// no-op; putting a *different* decisive verdict for a stored key is
// refused with an error wrapping ErrConflict, because it means the
// keying broke (a fingerprint collision or a nondeterministic checker)
// and trusting either verdict would be unsound.
func (s *Store) Put(k Key, v core.Verdict, name string) error {
	if v != core.OK && v != core.SafetyViolation && v != core.ATViolation {
		return nil
	}
	h := k.Hash()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return fmt.Errorf("store: %s: Put after Close", s.path)
	}
	s.stats.Puts++
	if prev, ok := s.index[h]; ok {
		if prev == v {
			return nil
		}
		s.stats.Conflicts++
		return fmt.Errorf("store: %w for %s (%s): stored %v, new %v", ErrConflict, name, k.Model, prev, v)
	}
	if _, err := s.f.Write(encodeRecord(currentEpoch(), h, v, name)); err != nil {
		return fmt.Errorf("store: appending to %s: %w", s.path, err)
	}
	s.index[h] = v
	s.stats.Appended++
	return nil
}

// Len returns the number of indexed verdicts.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats returns a snapshot of the store's accounting.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Path returns the log's file path.
func (s *Store) Path() string { return s.path }

// Close syncs and closes the log, releasing the advisory lock taken by
// Open. The Store must not be used after (a late Put fails cleanly).
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	s.f = nil
	return err
}

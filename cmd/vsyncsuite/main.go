// vsyncsuite runs the full verification corpus — every registered
// non-buggy lock's generic client across a thread-count ladder, every
// registered non-buggy workload (the nonblocking structures of
// internal/structs, at the ladder rungs within each one's supported
// range), plus the litmus conformance tests, under every memory model —
// incrementally against a persistent verdict store: cells the store has
// already decided are served by a hash lookup and their AMC runs
// skipped, cells it hasn't fan out across a worker pool and their
// decisive verdicts are appended for the next run. A warm re-run over
// an unchanged corpus does no model checking at all.
//
// The store is a shared session: two simultaneous vsyncsuite
// invocations (or a suite racing vsynccheck/vsyncopt) may point at one
// path, each observing the other's verdicts as they land; -remote URL
// additionally tiers lookups through a vsyncstored verdict service.
//
// Usage:
//
//	vsyncsuite [-store PATH] [-remote URL] [-models sc,tso,wmm]
//	           [-locks a,b,...] [-no-locks] [-structs a,b,...] [-no-structs]
//	           [-threads N] [-iters N] [-no-litmus]
//	           [-par N] [-workers N] [-min-hit-rate F] [-v]
//	           [-budget 30s] [-budget-graphs N] [-budget-mem BYTES]
//	           [-checkpoint-dir DIR] [-checkpoint-interval 5s]
//
// -threads N covers the ladder 2..N (default 2). -min-hit-rate F exits
// non-zero when the store served less than fraction F of the cells —
// CI uses it to assert that a warm pass did near-zero AMC work.
//
// -structs selects specific workloads by registry name (vsynccheck
// -list prints them); -no-structs drops the structure rows and
// -no-locks the lock rows, so one invocation can cover exactly one
// corpus slice (the Makefile budget-insures the heavier structure
// rungs in a dedicated pass this way).
//
// -budget* bounds each cell's AMC segment; cells that hit the budget
// (or are interrupted by SIGINT/SIGTERM) finish Undecided — neither
// failed nor errored — and, with -checkpoint-dir, persist their
// unexplored frontier to content-addressed checkpoint files there.
// Rerunning the same command resumes exactly those cells where they
// stopped; combined with -store, everything already decided is a hash
// lookup, so a long cold suite survives any number of interruptions
// without redoing work.
//
// Exit status: 0 all lock cells verified (and hit-rate satisfied),
// 1 a lock cell failed verification or the hit-rate floor was missed,
// 2 usage or engine errors, 3 cells left undecided (rerun to resume),
// 130 on a second signal.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/locks"
	"repro/vsync"
)

func main() {
	var (
		storePath  = cli.Store()
		remote     = cli.Remote()
		modelsFlag = flag.String("models", "", "comma-separated memory models (default: sc,tso,wmm)")
		locksFlag  = flag.String("locks", "", "comma-separated lock algorithms (default: every non-buggy one)")
		noLocks    = flag.Bool("no-locks", false, "drop the lock-client rows")
		structsF   = flag.String("structs", "", "comma-separated workload names (default: every non-buggy registered workload)")
		noStructs  = flag.Bool("no-structs", false, "drop the structure workload rows")
		threads    = flag.Int("threads", 2, "client thread-count ladder 2..N")
		iters      = flag.Int("iters", 1, "critical sections per client thread")
		noLitmus   = flag.Bool("no-litmus", false, "drop the litmus conformance corpus")
		par        = cli.Par()
		workers    = cli.Workers()
		minHitRate = cli.MinHitRate()
		budget     = cli.BudgetFlags()
		ckptDir    = cli.CheckpointDir()
		ckptInt    = cli.CheckpointInterval()
		verbose    = flag.Bool("v", false, "print the full per-cell table, not just the summary")
	)
	flag.Parse()
	ctx := cli.SignalContext("vsyncsuite")

	cfg := vsync.MatrixConfig{
		MaxThreads:         *threads,
		Iters:              *iters,
		NoLitmus:           *noLitmus,
		NoLocks:            *noLocks,
		NoStructs:          *noStructs,
		Parallelism:        *par,
		WorkersPerRun:      *workers,
		Budget:             budget(),
		CheckpointDir:      cli.EnsureCheckpointDir("vsyncsuite", *ckptDir),
		CheckpointInterval: *ckptInt,
	}
	if *modelsFlag != "" {
		for _, name := range strings.Split(*modelsFlag, ",") {
			cfg.Models = append(cfg.Models, cli.ParseModel("vsyncsuite", strings.TrimSpace(name)))
		}
	}
	if *locksFlag != "" {
		for _, name := range strings.Split(*locksFlag, ",") {
			alg := locks.ByName(strings.TrimSpace(name))
			if alg == nil {
				fmt.Fprintf(os.Stderr, "vsyncsuite: unknown lock %q (see vsynccheck -list)\n", name)
				os.Exit(2)
			}
			cfg.Locks = append(cfg.Locks, alg)
		}
	}
	if *structsF != "" {
		for _, name := range strings.Split(*structsF, ",") {
			w := vsync.WorkloadByName(strings.TrimSpace(name))
			if w == nil {
				fmt.Fprintf(os.Stderr, "vsyncsuite: unknown workload %q (see vsynccheck -list)\n", name)
				os.Exit(2)
			}
			cfg.Structs = append(cfg.Structs, w)
		}
	}
	st := cli.OpenStore("vsyncsuite", *storePath, *remote)
	if st != nil {
		defer st.Close()
		cfg.Store = st
	}

	res := vsync.VerifyMatrixCtx(ctx, cfg)
	if *verbose {
		fmt.Print(res.Report())
	} else {
		fmt.Print(res.Summary())
	}
	if res.StoreErr != nil {
		// The verdicts themselves are sound (append failures never taint
		// a cell), but this run did not warm the store the way the
		// operator believes — the next run will redo the skipped work.
		fmt.Fprintf(os.Stderr, "vsyncsuite: warning: store append failed, some verdicts were not persisted: %v\n", res.StoreErr)
	}
	for i := range res.Cells {
		c := &res.Cells[i]
		if c.Err != nil {
			fmt.Fprintf(os.Stderr, "vsyncsuite: %s under %s: %v\n", c.Program, c.Model, c.Err)
		} else if c.Failed() {
			fmt.Fprintf(os.Stderr, "vsyncsuite: %s under %s: %s\n", c.Program, c.Model, c.Verdict)
		}
	}
	switch {
	case res.Errors > 0:
		os.Exit(2)
	case res.Failures > 0:
		os.Exit(1)
	case res.Undecided > 0:
		// Unfinished, not failed: budget-hit cells checkpointed (with
		// -checkpoint-dir) and a rerun resumes them.
		if cfg.CheckpointDir != "" {
			fmt.Fprintf(os.Stderr, "vsyncsuite: %d cells undecided, checkpointed to %s — rerun the same command to resume\n",
				res.Undecided, cfg.CheckpointDir)
		} else {
			fmt.Fprintf(os.Stderr, "vsyncsuite: %d cells undecided — rerun with -checkpoint-dir to make them resumable\n", res.Undecided)
		}
		os.Exit(cli.ExitUndecided)
	case res.HitRate() < *minHitRate:
		fmt.Fprintf(os.Stderr, "vsyncsuite: hit rate %.1f%% below required %.1f%% — the warm pass did AMC work it should have skipped\n",
			100*res.HitRate(), 100**minHitRate)
		os.Exit(1)
	}
}

// vsyncstored serves one shared verdict store over HTTP — the remote
// tier behind -remote on the other vsync tools. A fleet of checkers
// (developer machines, CI shards) point at one vsyncstored and pool
// their AMC work: a cell any of them decided is a network GET for all
// of them, and local runs stay sound and complete if the service is
// unreachable (clients degrade to local-only with backoff).
//
// The store file is the same append-only log the tools use locally, so
// it can be seeded from, merged with, or inspected as any other store;
// the server is just another shared session on it, and a local
// vsyncsuite may even run against the same file concurrently.
//
// Usage:
//
//	vsyncstored [-store PATH] [-addr HOST:PORT]
//
// API (JSON):
//
//	GET /v1/verdict?epoch=HEX&key=HEX   one verdict, 404 on miss
//	PUT /v1/verdicts                    idempotent batch ingest
//	GET /v1/stats                       session counters
//	GET /v1/healthz                     liveness (200 for the whole process lifetime)
//	GET /v1/readyz                      routability (503 once a drain starts)
//
// SIGINT/SIGTERM triggers a graceful drain: readyz flips to 503 (so
// load balancers stop routing here), in-flight requests complete,
// pending work is flushed, and the store is closed cleanly. healthz
// stays 200 throughout — draining is not dead, and a restart
// orchestrator must not kill an instance for draining.
//
// Exit status: 0 on clean shutdown (SIGINT/SIGTERM), 2 on usage or
// bind errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/store"
	_ "repro/vsync" // registers vsync's code sources so epochs match client builds
)

func main() {
	var (
		storePath = flag.String("store", ".vsync-store/verdicts.log", "verdict store the service reads and appends")
		addr      = flag.String("addr", "localhost:8372", "listen address")
	)
	flag.Parse()

	s, err := store.OpenShared(*storePath, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vsyncstored:", err)
		os.Exit(2)
	}
	defer s.Close()
	st := s.Stats()
	fmt.Printf("vsyncstored: serving %s (%d verdicts, %d foreign-epoch) on http://%s\n",
		s.Path(), st.Loaded, st.Stale, *addr)

	h := store.NewHandler(s)
	srv := &http.Server{Addr: *addr, Handler: h}
	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		// ListenAndServe only returns on failure to bind/serve.
		fmt.Fprintln(os.Stderr, "vsyncstored:", err)
		os.Exit(2)
	case <-sig:
		// Graceful drain, in load-balancer order: flip /v1/readyz to 503
		// first so rolling restarts stop routing new clients here, then
		// let in-flight requests complete, then flush anything the
		// session still holds (its own remote tier, when configured)
		// before the deferred Close. healthz stays 200 throughout —
		// draining is not dead.
		fmt.Fprintln(os.Stderr, "vsyncstored: draining (readyz now 503; in-flight requests completing)")
		h.SetReady(false)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "vsyncstored: shutdown:", err)
		}
		<-done
		// Flush anything the session still holds in flight (its own
		// remote tier, when this instance chains to another service)
		// before the deferred Close.
		s.Flush()
	}
}

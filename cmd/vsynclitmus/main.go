// vsynclitmus runs the built-in litmus tests under every memory model
// and prints the allowed/forbidden matrix — a conformance view of the
// consistency predicates (SC, TSO, WMM, and the psc-ablation model RA).
//
// Every verdict is mapped explicitly: "forbidden" (no execution shows
// the weak outcome), "ALLOWED" (some execution does), "await-hang" (an
// await loop can spin forever — a litmus test outside AMC's terminating
// fragment), and "ERROR" for engine failures, whose details go to
// stderr. Exit status is 2 when any cell was an engine error (or
// canceled), 0 otherwise.
//
// -store PATH serves already-decided cells from the shared verdict
// store (the same zero-spec addressing vsyncsuite uses for its litmus
// cells, so the two tools warm each other) and appends fresh decisive
// outcomes; -remote URL tiers lookups through a vsyncstored service.
// -workers N shares each run's exploration frontier across N workers.
//
// Usage:
//
//	vsynclitmus            # weak (relaxed) variants
//	vsynclitmus -strong    # release/acquire and SC variants
//	vsynclitmus -name MP   # one test only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mm"
	"repro/internal/report"
	"repro/vsync"
)

func main() {
	var (
		strong    = flag.Bool("strong", false, "use release/acquire (and SC where relevant) accesses")
		name      = flag.String("name", "", "run a single litmus test")
		workers   = cli.Workers()
		storePath = cli.Store()
		remote    = cli.Remote()
	)
	flag.Parse()
	ctx := cli.SignalContext("vsynclitmus")

	st := cli.OpenStore("vsynclitmus", *storePath, *remote)
	if st != nil {
		defer st.Close()
	}
	models := append(mm.All(), mm.RA)
	names := harness.LitmusNames()
	if *name != "" {
		names = []string{*name}
	}
	headers := []string{"litmus"}
	for _, m := range models {
		headers = append(headers, m.Name())
	}
	strength := "weak"
	if *strong {
		strength = "strong"
	}
	t := report.NewTable(fmt.Sprintf("litmus conformance (%s variants): is the weak outcome observable?", strength), headers...)
	hadError := false
	hits := 0
	for _, n := range names {
		p := harness.Litmus(n, *strong)
		if p == nil {
			fmt.Fprintf(os.Stderr, "vsynclitmus: unknown litmus %q\n", n)
			os.Exit(2)
		}
		row := []any{n}
		for _, m := range models {
			// Litmus cells are addressed with a zero spec fingerprint —
			// the program is self-contained, there is no barrier spec —
			// matching the suite matrix's litmus keys.
			rr := vsync.RunCtx(ctx, m, []*vsync.Program{p}, vsync.RunOptions{
				Parallelism:    1,
				WorkersPerRun:  *workers,
				CollectResults: true,
				Store:          st,
				StoreKeys:      []vsync.StoreKey{{Model: m.Name(), Prog: p.Fingerprint128()}},
			})
			res := rr.Results[0]
			hits += rr.StoreHits
			if rr.StoreErr != nil {
				fmt.Fprintln(os.Stderr, "vsynclitmus: warning:", rr.StoreErr)
			}
			// Verdict.LitmusLabel maps every verdict explicitly: an
			// unexplained raw string in the observability matrix would
			// leave the reader guessing whether the *outcome* or the
			// *engine* is at fault. Engine failures additionally explain
			// themselves on stderr and fail the invocation.
			row = append(row, res.Verdict.LitmusLabel())
			switch res.Verdict {
			case core.OK, core.SafetyViolation, core.ATViolation:
			case core.Canceled:
				hadError = true
				fmt.Fprintf(os.Stderr, "vsynclitmus: %s under %s: run canceled before a verdict\n", n, m.Name())
			default:
				hadError = true
				fmt.Fprintf(os.Stderr, "vsynclitmus: %s under %s: %v\n", n, m.Name(), res.Err)
			}
		}
		t.Add(row...)
	}
	fmt.Println(t.String())
	if st != nil {
		fmt.Printf("store: %d of %d cells served without an AMC run\n", hits, (len(names))*len(models))
	}
	if hadError {
		os.Exit(2)
	}
}

// vsynclitmus runs the built-in litmus tests under every memory model
// and prints the allowed/forbidden matrix — a conformance view of the
// consistency predicates (SC, TSO, WMM, and the psc-ablation model RA).
//
// Every verdict is mapped explicitly: "forbidden" (no execution shows
// the weak outcome), "ALLOWED" (some execution does), "await-hang" (an
// await loop can spin forever — a litmus test outside AMC's terminating
// fragment), and "ERROR" for engine failures, whose details go to
// stderr. Exit status is 2 when any cell was an engine error (or
// canceled), 0 otherwise.
//
// Usage:
//
//	vsynclitmus            # weak (relaxed) variants
//	vsynclitmus -strong    # release/acquire and SC variants
//	vsynclitmus -name MP   # one test only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mm"
	"repro/internal/report"
)

func main() {
	var (
		strong = flag.Bool("strong", false, "use release/acquire (and SC where relevant) accesses")
		name   = flag.String("name", "", "run a single litmus test")
	)
	flag.Parse()

	models := append(mm.All(), mm.RA)
	names := harness.LitmusNames()
	if *name != "" {
		names = []string{*name}
	}
	headers := []string{"litmus"}
	for _, m := range models {
		headers = append(headers, m.Name())
	}
	strength := "weak"
	if *strong {
		strength = "strong"
	}
	t := report.NewTable(fmt.Sprintf("litmus conformance (%s variants): is the weak outcome observable?", strength), headers...)
	hadError := false
	for _, n := range names {
		p := harness.Litmus(n, *strong)
		if p == nil {
			fmt.Fprintf(os.Stderr, "vsynclitmus: unknown litmus %q\n", n)
			os.Exit(2)
		}
		row := []any{n}
		for _, m := range models {
			res := core.New(m).Run(p)
			// Verdict.LitmusLabel maps every verdict explicitly: an
			// unexplained raw string in the observability matrix would
			// leave the reader guessing whether the *outcome* or the
			// *engine* is at fault. Engine failures additionally explain
			// themselves on stderr and fail the invocation.
			row = append(row, res.Verdict.LitmusLabel())
			switch res.Verdict {
			case core.OK, core.SafetyViolation, core.ATViolation:
			case core.Canceled:
				hadError = true
				fmt.Fprintf(os.Stderr, "vsynclitmus: %s under %s: run canceled before a verdict\n", n, m.Name())
			default:
				hadError = true
				fmt.Fprintf(os.Stderr, "vsynclitmus: %s under %s: %v\n", n, m.Name(), res.Err)
			}
		}
		t.Add(row...)
	}
	fmt.Println(t.String())
	if hadError {
		os.Exit(2)
	}
}

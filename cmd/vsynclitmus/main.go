// vsynclitmus runs the built-in litmus tests under every memory model
// and prints the allowed/forbidden matrix — a conformance view of the
// consistency predicates (SC, TSO, WMM, and the psc-ablation model RA).
//
// Usage:
//
//	vsynclitmus            # weak (relaxed) variants
//	vsynclitmus -strong    # release/acquire and SC variants
//	vsynclitmus -name MP   # one test only
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/mm"
	"repro/internal/report"
)

func main() {
	var (
		strong = flag.Bool("strong", false, "use release/acquire (and SC where relevant) accesses")
		name   = flag.String("name", "", "run a single litmus test")
	)
	flag.Parse()

	models := append(mm.All(), mm.RA)
	names := harness.LitmusNames()
	if *name != "" {
		names = []string{*name}
	}
	headers := []string{"litmus"}
	for _, m := range models {
		headers = append(headers, m.Name())
	}
	strength := "weak"
	if *strong {
		strength = "strong"
	}
	t := report.NewTable(fmt.Sprintf("litmus conformance (%s variants): is the weak outcome observable?", strength), headers...)
	for _, n := range names {
		p := harness.Litmus(n, *strong)
		if p == nil {
			fmt.Fprintf(os.Stderr, "vsynclitmus: unknown litmus %q\n", n)
			os.Exit(2)
		}
		row := []any{n}
		for _, m := range models {
			res := core.New(m).Run(p)
			switch res.Verdict {
			case core.OK:
				row = append(row, "forbidden")
			case core.SafetyViolation:
				row = append(row, "ALLOWED")
			default:
				row = append(row, res.Verdict.String())
			}
		}
		t.Add(row...)
	}
	fmt.Println(t.String())
}

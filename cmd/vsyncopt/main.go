// vsyncopt runs push-button barrier optimization on a lock algorithm:
// starting from the sc-only assignment (or the algorithm's default with
// -from-default), every barrier point is relaxed as far as Await Model
// Checking allows, and the resulting Fig. 20-style mode listing is
// printed.
//
// The verification engine is parallel by default: candidate specs fan
// their client programs across -par workers, each point's candidate
// ladder is raced speculatively, and verdicts are memoized. -workers N
// additionally lets every AMC run share its exploration frontier with
// idle pool slots through intra-run work stealing — one scheduler for
// whole runs and stolen items. -par 1 -no-speculate -no-cache recovers
// the strictly sequential search; the resulting spec is identical
// whatever the engine settings.
//
// Usage:
//
//	vsyncopt -lock qspinlock [-model wmm] [-threads 2] [-from-default]
//	         [-store PATH] [-remote URL] [-par N] [-workers N]
//	         [-passes N] [-no-speculate] [-no-cache]
//
// -store PATH backs the verdict cache with the shared persistent store
// at PATH: candidates some earlier process (a previous vsyncopt run,
// the vsyncsuite orchestrator, a concurrent invocation, CI) already
// judged cost a hash lookup instead of a model-checking run, and every
// decisive verdict this run computes is appended for the next one.
// -remote URL tiers lookups through a vsyncstored verdict service.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/optimize"
	"repro/internal/store"
	"repro/internal/vprog"

	// Linked for its store.RegisterCodeSource init: every tool sharing
	// a verdict store must fold the same key-handling packages into the
	// code epoch, or a store warmed by vsyncsuite would silently serve
	// this tool zero hits (and vice versa).
	_ "repro/vsync"
)

func main() {
	var (
		lockName    = flag.String("lock", "", "lock algorithm to optimize")
		model       = cli.Model()
		threads     = flag.Int("threads", 2, "contending threads in the verification client")
		fromDefault = flag.Bool("from-default", false, "start from the default spec instead of all-SC")
		par         = cli.Par()
		workers     = cli.Workers()
		passes      = flag.Int("passes", 1, "full point sweeps (descent repeats until fixpoint or cap)")
		noSpeculate = flag.Bool("no-speculate", false, "disable the speculative candidate ladder")
		noCache     = flag.Bool("no-cache", false, "disable verdict memoization")
		storePath   = cli.Store()
		remote      = cli.Remote()
	)
	flag.Parse()
	ctx := cli.SignalContext("vsyncopt")

	alg := locks.ByName(*lockName)
	if alg == nil {
		fmt.Fprintf(os.Stderr, "vsyncopt: unknown lock %q\n", *lockName)
		os.Exit(2)
	}
	m := cli.ParseModel("vsyncopt", *model)
	opt := &optimize.Optimizer{
		Model: m,
		Programs: func(spec *vprog.BarrierSpec) []*vprog.Program {
			ps := []*vprog.Program{harness.MutexClient(alg, spec, *threads, 1)}
			if alg.Name == "qspin" {
				// Cover the MCS queue paths (see §3.3 and the Fig. 1
				// extraction methodology).
				ps = append(ps, harness.QspinQueuePathLitmus(spec),
					harness.MutexClient(alg, spec, 3, 1))
			}
			return ps
		},
		Passes:        *passes,
		Parallelism:   *par,
		WorkersPerRun: *workers,
		Speculate:     !*noSpeculate,
	}
	st := cli.OpenStore("vsyncopt", *storePath, *remote)
	if st != nil {
		defer st.Close()
		opt.Cache = optimize.NewCacheWithStore(st)
	} else if !*noCache {
		opt.Cache = optimize.NewCache()
	}
	initial := alg.DefaultSpec().AllSC()
	if *fromDefault {
		initial = alg.DefaultSpec()
	}
	fmt.Printf("optimizing %s (%d barrier points)...\n\n", alg.Name, len(initial.Points()))
	res, err := opt.RunCtx(ctx, initial)
	if err != nil {
		if ctx.Err() != nil {
			// The optimizer's resume mechanism IS the verdict store:
			// every candidate decided before the interrupt was written
			// through, so a rerun with the same -store fast-forwards to
			// where the descent stopped.
			fmt.Fprintln(os.Stderr, "vsyncopt: interrupted — decided candidates are in the store; rerun with the same -store to resume")
			os.Exit(cli.ExitUndecided)
		}
		fmt.Fprintln(os.Stderr, "vsyncopt:", err)
		os.Exit(2)
	}
	fmt.Println(res.Report())
	if st != nil {
		if err := opt.Cache.StoreErr(); err != nil && !errors.Is(err, store.ErrConflict) {
			// A failed write-through is silent at verdict time (the search
			// itself is unaffected), but the operator believes this run is
			// warming the store — say loudly that it may not be. Conflicts
			// are not a persistence problem and get their own exit-2
			// treatment below.
			fmt.Fprintf(os.Stderr, "vsyncopt: warning: store write-through failed, some verdicts were not persisted: %v\n", err)
		}
		s := st.Stats()
		fmt.Printf("store: %d verdicts served (%d probes), %d appended, %d total\n",
			s.Hits, s.Hits+s.Misses, s.Appended, st.Len())
		if s.RemoteHits > 0 || s.RemotePuts > 0 || s.RemoteFailures > 0 {
			fmt.Printf("remote: %d served, %d pushed, %d failures\n",
				s.RemoteHits, s.RemotePuts, s.RemoteFailures)
		}
		if s.Conflicts > 0 {
			// The cache's write-through is best-effort, but a conflict is
			// never routine: it means two runs judged one key differently,
			// i.e. the fingerprint keying (or the checker) broke.
			fmt.Fprintf(os.Stderr, "vsyncopt: warning: %d verdict conflicts — the store and this run disagree on already-stored problems; distrust the store file\n", s.Conflicts)
			os.Exit(2)
		}
	}
}

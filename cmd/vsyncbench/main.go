// vsyncbench runs the §4.2 evaluation campaign on the simulated ARMv8
// and x86 platforms and prints the paper's tables and figures, plus the
// AMC hot-path benchmark suite that tracks the checker's own speed —
// including the intra-run work-stealing scaling curve (graphs/sec at
// 1/2/4/8 workers on the 3-thread MCS client) and the acyclicity-engine
// micro rows — and the verdict-store suite benchmark (cold vs warm
// vsyncsuite wall time).
//
// Usage:
//
//	vsyncbench              # quick campaign (Tables 2–5, Figs. 23–26)
//	vsyncbench -full        # the paper's full parameter grid
//	vsyncbench -fig27       # the MCS implementation comparison
//	vsyncbench -sweep       # the §4.2.2 cs_size / es_size findings
//	vsyncbench -amc         # checker hot-path suite -> BENCH_amc.json
//	vsyncbench -suite       # cold/warm store suite -> BENCH_suite.json
//
// Regression gate (make bench-check):
//
//	vsyncbench -amc -amcjson "" -amcbaseline BENCH_amc.json
//
// compares the fresh run against the committed baseline and exits
// non-zero when any row's graphs_per_sec regresses beyond the
// tolerance (-amcchecktol, default 25%).
//
// Hot-path investigation:
//
//	vsyncbench -amc -cpuprofile cpu.out -memprofile mem.out
//
// writes pprof profiles of whichever mode ran, for `go tool pprof`.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/cli"
	"repro/internal/wmsim"
	"repro/vsync"
)

// parseWorkers parses a comma-separated worker ladder like "1,2,4,8".
func parseWorkers(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	var (
		full         = flag.Bool("full", false, "run the paper's full parameter grid")
		fig27        = flag.Bool("fig27", false, "run the Fig. 27 MCS implementation comparison")
		sweep        = flag.Bool("sweep", false, "run the §4.2.2 critical/outside section size sweeps")
		amc          = flag.Bool("amc", false, "run the AMC hot-path benchmark suite (graphs/sec, allocs, scaling)")
		amcRuns      = flag.Int("amcruns", 5, "measured runs per target in the AMC suite")
		amcJSON      = flag.String("amcjson", "BENCH_amc.json", "path of the AMC suite JSON artifact (empty: don't write)")
		amcWorkers   = flag.String("amcworkers", "1,2,4,8", "worker ladder for the AMC scaling targets (empty: skip them)")
		amcBaseline  = flag.String("amcbaseline", "", "compare the fresh -amc run against this baseline artifact and fail on regressions")
		amcBest      = flag.Int("amcbest", 1, "repeat the AMC suite this many times and keep each row's best run (noise armor for -amcbaseline)")
		amcCheckTol  = flag.Float64("amcchecktol", 0.25, "graphs/sec regression tolerance for -amcbaseline (fraction)")
		suite        = flag.Bool("suite", false, "run the cold/warm verdict-store suite benchmark")
		suiteJSON    = flag.String("suitejson", "BENCH_suite.json", "path of the suite benchmark JSON artifact (empty: don't write)")
		suiteThreads = flag.Int("suitethreads", 2, "client thread-count ladder top for -suite")
		workers      = cli.Workers()
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile   = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()
	ctx := cli.SignalContext("vsyncbench")

	cpuStarted := false
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		cpuStarted = true
	}

	runErr := run(ctx, modes{
		amc: *amc, full: *full, fig27: *fig27, sweep: *sweep, suite: *suite,
		amcRuns: *amcRuns, amcJSON: *amcJSON, amcWorkers: *amcWorkers, amcBest: *amcBest,
		amcBaseline: *amcBaseline, amcCheckTol: *amcCheckTol,
		suiteJSON: *suiteJSON, suiteThreads: *suiteThreads, workers: *workers,
	})

	// Flush both profiles before any fatal exit: log.Fatal skips defers,
	// and a CPU profile without its StopCPUProfile trailer is unreadable.
	if cpuStarted {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		runtime.GC() // material for the heap profile, not the transients
		werr := pprof.WriteHeapProfile(f)
		f.Close()
		if werr != nil {
			log.Fatalf("memprofile: %v", werr)
		}
	}
	if runErr != nil {
		if ctx.Err() != nil {
			// Interrupted between phases: profiles and any artifacts
			// written so far are flushed and valid; exit with the
			// conventional signal status.
			fmt.Fprintln(os.Stderr, "vsyncbench:", runErr)
			os.Exit(130)
		}
		log.Fatal(runErr)
	}
}

// modes bundles the parsed mode flags for run.
type modes struct {
	amc, full, fig27, sweep, suite bool
	amcRuns, amcBest               int
	amcJSON, amcWorkers            string
	amcBaseline                    string
	amcCheckTol                    float64
	suiteJSON                      string
	suiteThreads                   int
	workers                        int
}

// run executes the selected mode, returning (not exiting on) failures
// so the caller can flush profiles first. Between phases (repeated
// suite passes, per-machine sweeps) it honors ctx: an interrupt stops
// before the next phase with everything already measured flushed.
func run(ctx context.Context, m modes) error {
	start := time.Now()
	amc, full, fig27, sweep := m.amc, m.full, m.fig27, m.sweep
	switch {
	case amc:
		ladder, err := parseWorkers(m.amcWorkers)
		if err != nil {
			return fmt.Errorf("-amcworkers: %v", err)
		}
		suite := bench.RunAMCSuiteWorkers(m.amcRuns, ladder)
		for i := 1; i < m.amcBest; i++ {
			if ctx.Err() != nil {
				return fmt.Errorf("interrupted after %d of %d suite passes", i, m.amcBest)
			}
			suite = bench.BestOfAMC(suite, bench.RunAMCSuiteWorkers(m.amcRuns, ladder))
		}
		fmt.Print(suite)
		if m.amcJSON != "" {
			if err := suite.WriteJSON(m.amcJSON); err != nil {
				return fmt.Errorf("writing %s: %v", m.amcJSON, err)
			}
			fmt.Printf("wrote %s\n", m.amcJSON)
		}
		if bad := suite.Errors(); len(bad) > 0 {
			return fmt.Errorf("checker errors on: %v", bad)
		}
		if m.amcBaseline != "" {
			baseline, err := bench.ReadAMCSuite(m.amcBaseline)
			if err != nil {
				return fmt.Errorf("-amcbaseline: %v", err)
			}
			if bad := bench.CompareAMC(baseline, suite, m.amcCheckTol); len(bad) > 0 {
				for _, line := range bad {
					fmt.Fprintln(os.Stderr, "bench-check:", line)
				}
				return fmt.Errorf("bench-check: %d row(s) regressed against %s", len(bad), m.amcBaseline)
			}
			fmt.Printf("bench-check: no graphs/sec regressions against %s (tolerance %.0f%%)\n",
				m.amcBaseline, 100*m.amcCheckTol)
		}
	case m.suite:
		sb, err := vsync.RunSuiteBench(m.suiteThreads, m.workers)
		if err != nil {
			return err
		}
		fmt.Print(sb)
		if m.suiteJSON != "" {
			if err := sb.WriteJSON(m.suiteJSON); err != nil {
				return fmt.Errorf("writing %s: %v", m.suiteJSON, err)
			}
			fmt.Printf("wrote %s\n", m.suiteJSON)
		}
	case fig27:
		for _, mc := range wmsim.Machines() {
			if ctx.Err() != nil {
				return fmt.Errorf("interrupted before %s", mc.Name)
			}
			fmt.Println(bench.Fig27(mc, bench.PaperThreads, 3, 150_000))
		}
	case sweep:
		for _, mc := range wmsim.Machines() {
			if ctx.Err() != nil {
				return fmt.Errorf("interrupted before %s", mc.Name)
			}
			for _, th := range []int{1, 8} {
				out, _ := bench.CSSweep(mc, "mcs", th, []int{1, 4, 16, 64}, 150_000)
				fmt.Println(out)
			}
			out, _ := bench.ESSweep(mc, "mcs", 8, []int{0, 4, 16}, 150_000)
			fmt.Println(out)
		}
	default:
		cfg := bench.Quick()
		if full {
			cfg = bench.Default()
		}
		fmt.Println(bench.CampaignReport(cfg))
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

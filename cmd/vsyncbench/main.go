// vsyncbench runs the §4.2 evaluation campaign on the simulated ARMv8
// and x86 platforms and prints the paper's tables and figures, plus the
// AMC hot-path benchmark suite that tracks the checker's own speed —
// including the intra-run work-stealing scaling curve (graphs/sec at
// 1/2/4/8 workers on the 3-thread MCS client).
//
// Usage:
//
//	vsyncbench              # quick campaign (Tables 2–5, Figs. 23–26)
//	vsyncbench -full        # the paper's full parameter grid
//	vsyncbench -fig27       # the MCS implementation comparison
//	vsyncbench -sweep       # the §4.2.2 cs_size / es_size findings
//	vsyncbench -amc         # checker hot-path suite -> BENCH_amc.json
//
// Hot-path investigation:
//
//	vsyncbench -amc -cpuprofile cpu.out -memprofile mem.out
//
// writes pprof profiles of whichever mode ran, for `go tool pprof`.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/wmsim"
)

// parseWorkers parses a comma-separated worker ladder like "1,2,4,8".
func parseWorkers(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	var (
		full       = flag.Bool("full", false, "run the paper's full parameter grid")
		fig27      = flag.Bool("fig27", false, "run the Fig. 27 MCS implementation comparison")
		sweep      = flag.Bool("sweep", false, "run the §4.2.2 critical/outside section size sweeps")
		amc        = flag.Bool("amc", false, "run the AMC hot-path benchmark suite (graphs/sec, allocs, scaling)")
		amcRuns    = flag.Int("amcruns", 5, "measured runs per target in the AMC suite")
		amcJSON    = flag.String("amcjson", "BENCH_amc.json", "path of the AMC suite JSON artifact (empty: don't write)")
		amcWorkers = flag.String("amcworkers", "1,2,4,8", "worker ladder for the AMC scaling targets (empty: skip them)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
	)
	flag.Parse()

	cpuStarted := false
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		cpuStarted = true
	}

	runErr := run(*amc, *full, *fig27, *sweep, *amcRuns, *amcJSON, *amcWorkers)

	// Flush both profiles before any fatal exit: log.Fatal skips defers,
	// and a CPU profile without its StopCPUProfile trailer is unreadable.
	if cpuStarted {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			log.Fatalf("memprofile: %v", err)
		}
		runtime.GC() // material for the heap profile, not the transients
		werr := pprof.WriteHeapProfile(f)
		f.Close()
		if werr != nil {
			log.Fatalf("memprofile: %v", werr)
		}
	}
	if runErr != nil {
		log.Fatal(runErr)
	}
}

// run executes the selected mode, returning (not exiting on) failures
// so the caller can flush profiles first.
func run(amc, full, fig27, sweep bool, amcRuns int, amcJSON, amcWorkers string) error {
	start := time.Now()
	switch {
	case amc:
		ladder, err := parseWorkers(amcWorkers)
		if err != nil {
			return fmt.Errorf("-amcworkers: %v", err)
		}
		suite := bench.RunAMCSuiteWorkers(amcRuns, ladder)
		fmt.Print(suite)
		if amcJSON != "" {
			if err := suite.WriteJSON(amcJSON); err != nil {
				return fmt.Errorf("writing %s: %v", amcJSON, err)
			}
			fmt.Printf("wrote %s\n", amcJSON)
		}
		if bad := suite.Errors(); len(bad) > 0 {
			return fmt.Errorf("checker errors on: %v", bad)
		}
	case fig27:
		for _, mc := range wmsim.Machines() {
			fmt.Println(bench.Fig27(mc, bench.PaperThreads, 3, 150_000))
		}
	case sweep:
		for _, mc := range wmsim.Machines() {
			for _, th := range []int{1, 8} {
				out, _ := bench.CSSweep(mc, "mcs", th, []int{1, 4, 16, 64}, 150_000)
				fmt.Println(out)
			}
			out, _ := bench.ESSweep(mc, "mcs", 8, []int{0, 4, 16}, 150_000)
			fmt.Println(out)
		}
	default:
		cfg := bench.Quick()
		if full {
			cfg = bench.Default()
		}
		fmt.Println(bench.CampaignReport(cfg))
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}

// vsyncbench runs the §4.2 evaluation campaign on the simulated ARMv8
// and x86 platforms and prints the paper's tables and figures, plus the
// AMC hot-path benchmark suite that tracks the checker's own speed.
//
// Usage:
//
//	vsyncbench              # quick campaign (Tables 2–5, Figs. 23–26)
//	vsyncbench -full        # the paper's full parameter grid
//	vsyncbench -fig27       # the MCS implementation comparison
//	vsyncbench -sweep       # the §4.2.2 cs_size / es_size findings
//	vsyncbench -amc         # checker hot-path suite -> BENCH_amc.json
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/bench"
	"repro/internal/wmsim"
)

func main() {
	var (
		full    = flag.Bool("full", false, "run the paper's full parameter grid")
		fig27   = flag.Bool("fig27", false, "run the Fig. 27 MCS implementation comparison")
		sweep   = flag.Bool("sweep", false, "run the §4.2.2 critical/outside section size sweeps")
		amc     = flag.Bool("amc", false, "run the AMC hot-path benchmark suite (graphs/sec, allocs)")
		amcRuns = flag.Int("amcruns", 5, "measured runs per target in the AMC suite")
		amcJSON = flag.String("amcjson", "BENCH_amc.json", "path of the AMC suite JSON artifact (empty: don't write)")
	)
	flag.Parse()

	start := time.Now()
	switch {
	case *amc:
		suite := bench.RunAMCSuite(*amcRuns)
		fmt.Print(suite)
		if *amcJSON != "" {
			if err := suite.WriteJSON(*amcJSON); err != nil {
				log.Fatalf("writing %s: %v", *amcJSON, err)
			}
			fmt.Printf("wrote %s\n", *amcJSON)
		}
		if bad := suite.Errors(); len(bad) > 0 {
			log.Fatalf("checker errors on: %v", bad)
		}
	case *fig27:
		for _, mc := range wmsim.Machines() {
			fmt.Println(bench.Fig27(mc, bench.PaperThreads, 3, 150_000))
		}
	case *sweep:
		for _, mc := range wmsim.Machines() {
			for _, th := range []int{1, 8} {
				out, _ := bench.CSSweep(mc, "mcs", th, []int{1, 4, 16, 64}, 150_000)
				fmt.Println(out)
			}
			out, _ := bench.ESSweep(mc, "mcs", 8, []int{0, 4, 16}, 150_000)
			fmt.Println(out)
		}
	default:
		cfg := bench.Quick()
		if *full {
			cfg = bench.Default()
		}
		fmt.Println(bench.CampaignReport(cfg))
	}
	fmt.Printf("done in %v\n", time.Since(start).Round(time.Millisecond))
}

// vsynccheck model-checks a synchronization primitive (or a built-in
// litmus test) with Await Model Checking.
//
// Usage:
//
//	vsynccheck -lock mcs [-model wmm] [-threads 2] [-iters 1] [-sc] [-dot out.dot] [-workers N]
//	vsynccheck -all [-par N] [-workers N]
//	vsynccheck -list
//
// -store PATH consults the persistent verdict store first — a problem
// some earlier run already decided (same model, same barrier spec, same
// program shape) is answered by a hash lookup with no model checking —
// and appends every decisive verdict this invocation computes.
//
// -all verifies every registered correct (non-study-case) algorithm,
// fanning the AMC runs across -par workers (0 = GOMAXPROCS); the first
// failure cancels the remaining runs.
//
// -workers enables intra-run work stealing: the exploration frontier of
// each single run is shared by up to N workers (0 = GOMAXPROCS,
// 1 = the sequential DFS). Under -all the same pool slots serve both
// whole runs and stolen items, so the last big run soaks up slots its
// finished siblings released.
//
// Exit status 0 on successful verification, 1 on a violation, 2 on
// usage or checker errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/store"
	"repro/internal/vprog"
	"repro/vsync"
)

// storeKey builds the content address of one verification problem.
func storeKey(m mm.Model, spec *vprog.BarrierSpec, p *vsync.Program) store.Key {
	return store.Key{Model: m.Name(), Spec: spec.Fingerprint128(), Prog: p.Fingerprint128()}
}

// storePut appends a verdict, reporting rather than swallowing
// failures: an append error means the verdict will be re-computed next
// run, and a conflict means the keying itself broke — both things the
// operator must see.
func storePut(st *store.Store, k store.Key, v core.Verdict, name string) {
	if err := st.Put(k, v, name); err != nil {
		fmt.Fprintln(os.Stderr, "vsynccheck: warning:", err)
	}
}

// par0 renders the effective worker count of a -par value.
func par0(par int) int {
	if par <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return par
}

func main() {
	var (
		lockName  = flag.String("lock", "", "lock algorithm to verify (see -list)")
		model     = flag.String("model", "wmm", "memory model: sc, tso or wmm")
		threads   = flag.Int("threads", 2, "contending threads in the generic client")
		iters     = flag.Int("iters", 1, "critical sections per thread")
		scOnly    = flag.Bool("sc", false, "verify the sc-only (all-SC barrier) variant")
		dotOut    = flag.String("dot", "", "write the counterexample graph as Graphviz DOT to this file")
		list      = flag.Bool("list", false, "list registered algorithms and exit")
		all       = flag.Bool("all", false, "verify every registered correct algorithm in parallel")
		par       = flag.Int("par", 0, "concurrent AMC runs for -all (0 = GOMAXPROCS)")
		workers   = flag.Int("workers", 1, "intra-run work-stealing workers per AMC run (0 = GOMAXPROCS, 1 = sequential)")
		storePath = flag.String("store", "", "persistent verdict store: serve already-decided problems, append new verdicts")
	)
	flag.Parse()

	var st *store.Store
	if *storePath != "" {
		var err error
		st, err = store.Open(*storePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vsynccheck:", err)
			os.Exit(2)
		}
		defer st.Close()
	}

	if *list {
		for _, alg := range locks.All() {
			tag := ""
			if alg.Buggy {
				tag = "  [known-buggy study case]"
			}
			fmt.Printf("%-16s %s%s\n", alg.Name, alg.Doc, tag)
		}
		return
	}
	if *all {
		m := mm.ByName(*model)
		if m == nil {
			fmt.Fprintf(os.Stderr, "vsynccheck: unknown model %q (sc, tso, wmm)\n", *model)
			os.Exit(2)
		}
		var ps []*vsync.Program
		var keys []store.Key
		served := 0
		for _, alg := range locks.All() {
			if alg.Buggy {
				continue
			}
			spec := alg.DefaultSpec()
			p := harness.MutexClient(alg, spec, *threads, *iters)
			if st != nil {
				k := storeKey(m, spec, p)
				if v, ok := st.Lookup(k); ok {
					if v != core.OK {
						fmt.Printf("%s: %s (verdict served from store)\n", p.Name, v)
						os.Exit(1)
					}
					served++
					continue // already known to verify
				}
				keys = append(keys, k)
			}
			ps = append(ps, p)
		}
		if served > 0 {
			fmt.Printf("store: %d of %d algorithms already verified, %d to check\n",
				served, served+len(ps), len(ps))
		}
		if len(ps) == 0 {
			fmt.Println("ok: every algorithm served from the verdict store")
			return
		}
		fmt.Printf("checking %d algorithms under %s (%d threads × %d iterations, %d workers, %d per run)...\n",
			len(ps), m.Name(), *threads, *iters, par0(*par), par0(*workers))
		res, failed, results := vsync.VerifySuiteResults(m, *par, *workers, ps)
		if st != nil {
			// Record every decisive verdict — including the runs that
			// completed before a failure canceled the rest; re-doing that
			// work next run is exactly what the store exists to avoid.
			// Canceled and Error runs append nothing (store.Put drops
			// indecisive verdicts).
			for i, r := range results {
				storePut(st, keys[i], r.Verdict, m.Name()+"/"+ps[i].Name)
			}
		}
		if failed >= 0 {
			fmt.Printf("%s: %s\n", ps[failed].Name, res)
			if res.Verdict == core.Error {
				os.Exit(2)
			}
			os.Exit(1)
		}
		fmt.Println(res)
		return
	}
	if *lockName == "" {
		fmt.Fprintln(os.Stderr, "vsynccheck: -lock is required (try -list)")
		os.Exit(2)
	}
	alg := locks.ByName(*lockName)
	if alg == nil {
		fmt.Fprintf(os.Stderr, "vsynccheck: unknown lock %q (try -list)\n", *lockName)
		os.Exit(2)
	}
	m := mm.ByName(*model)
	if m == nil {
		fmt.Fprintf(os.Stderr, "vsynccheck: unknown model %q (sc, tso, wmm)\n", *model)
		os.Exit(2)
	}
	spec := alg.DefaultSpec()
	if *scOnly {
		spec = spec.AllSC()
	}

	p := harness.MutexClient(alg, spec, *threads, *iters)
	var k store.Key
	if st != nil {
		// Hashing interprets the whole program once; compute the key a
		// single time for both the lookup and the put.
		k = storeKey(m, spec, p)
	}
	if st != nil && *dotOut != "" {
		// A counterexample graph only exists on a real run; don't let a
		// store hit silently skip the artifact the user asked for.
		fmt.Println("note: -dot requested, bypassing the verdict store for this check")
	} else if st != nil {
		if v, ok := st.Lookup(k); ok {
			fmt.Printf("%s under %s: %s (verdict served from store, no AMC run)\n", p.Name, m.Name(), v)
			if v != core.OK {
				os.Exit(1)
			}
			return
		}
	}
	fmt.Printf("checking %s under %s (%d threads × %d iterations, %d workers)...\n",
		p.Name, m.Name(), *threads, *iters, par0(*workers))
	res := vsync.VerifyPar(m, p, *workers)
	if st != nil {
		storePut(st, k, res.Verdict, m.Name()+"/"+p.Name)
	}
	if res.Verdict == core.Error {
		fmt.Println(res)
		os.Exit(2)
	}
	if !res.Ok() {
		fmt.Println(res)
		if res.Witness != nil {
			fmt.Println("\ncounterexample execution graph:")
			fmt.Println(res.Witness.Render())
			if *dotOut != "" {
				if err := os.WriteFile(*dotOut, []byte(res.Witness.DOT(p.Name)), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "vsynccheck:", err)
				} else {
					fmt.Println("DOT graph written to", *dotOut)
				}
			}
		}
		os.Exit(1)
	}
	fmt.Print(res.Report())
}

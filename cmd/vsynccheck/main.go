// vsynccheck model-checks a synchronization primitive (or a built-in
// litmus test) with Await Model Checking.
//
// Usage:
//
//	vsynccheck -lock mcs [-model wmm] [-threads 2] [-iters 1] [-sc] [-dot out.dot] [-workers N] [-no-symmetry]
//	vsynccheck -workload structs/treiber [-model wmm] [-threads 2] [-sc] [-dot out.dot] [-workers N] [-no-symmetry]
//	vsynccheck -all [-par N] [-workers N]
//	vsynccheck -list
//	vsynccheck ... [-budget 30s] [-budget-graphs N] [-budget-mem BYTES]
//	              [-checkpoint-dir DIR] [-checkpoint-interval 5s]
//
// -workload checks a registered workload from the structure-agnostic
// workload layer (the nonblocking structures of internal/structs:
// Treiber stack, Michael–Scott queue, seqlock) at -threads client
// threads; -iters does not apply — each workload carries its own
// operation count. -list prints both corpora, locks first, then
// workloads with their supported thread ranges, in stable name order.
//
// -store PATH consults the persistent verdict store first — a problem
// some earlier run already decided (same model, same barrier spec, same
// program shape) is answered by a hash lookup with no model checking —
// and appends every decisive verdict this invocation computes. The
// store is a shared session: simultaneous tools on one path pool their
// verdicts, and -remote URL additionally tiers lookups through a
// vsyncstored verdict service.
//
// -all verifies every registered correct (non-study-case) algorithm,
// fanning the AMC runs across -par workers (0 = GOMAXPROCS); the first
// failure cancels the remaining runs.
//
// -workers enables intra-run work stealing: the exploration frontier of
// each single run is shared by up to N workers (0 = GOMAXPROCS,
// 1 = the sequential DFS). Under -all the same pool slots serve both
// whole runs and stolen items, so the last big run soaks up slots its
// finished siblings released.
//
// -no-symmetry disables thread-symmetry reduction, exploring every
// thread relabeling instead of one canonical representative per orbit —
// the verdict is guaranteed identical; the flag exists as a
// differential oracle and for apples-to-apples state-count comparisons.
//
// -budget* bounds a run segment (wall clock, popped graphs, heap); a
// budget hit — or a SIGINT/SIGTERM — drains the run cleanly and, with
// -checkpoint-dir, persists the unexplored frontier to a
// content-addressed checkpoint file there; rerunning the same command
// resumes exactly where it stopped, converging on the same verdict an
// uninterrupted run produces. -checkpoint-interval additionally
// snapshots the live frontier periodically, bounding what even a
// kill -9 can lose.
//
// Exit status 0 on successful verification, 1 on a violation, 2 on
// usage or checker errors, 3 undecided (budget hit or interrupted;
// checkpointed when -checkpoint-dir is set), 130 on a second signal.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/workload"
	"repro/vsync"
)

func main() {
	var (
		lockName  = flag.String("lock", "", "lock algorithm to verify (see -list)")
		wlName    = flag.String("workload", "", "registered workload to verify (see -list)")
		model     = cli.Model()
		threads   = flag.Int("threads", 2, "contending threads in the generic client")
		iters     = flag.Int("iters", 1, "critical sections per thread")
		scOnly    = flag.Bool("sc", false, "verify the sc-only (all-SC barrier) variant")
		dotOut    = flag.String("dot", "", "write the counterexample graph as Graphviz DOT to this file")
		list      = flag.Bool("list", false, "list registered algorithms and exit")
		all       = flag.Bool("all", false, "verify every registered correct algorithm in parallel")
		noSym     = flag.Bool("no-symmetry", false, "disable thread-symmetry reduction (differential oracle: same verdict, every thread relabeling explored)")
		par       = cli.Par()
		workers   = cli.Workers()
		storePath = cli.Store()
		remote    = cli.Remote()
		budget    = cli.BudgetFlags()
		ckptDir   = cli.CheckpointDir()
		ckptInt   = cli.CheckpointInterval()
	)
	flag.Parse()
	ctx := cli.SignalContext("vsynccheck")
	dir := cli.EnsureCheckpointDir("vsynccheck", *ckptDir)

	if *list {
		// Stable order for scripting: locks.All and workload.All both
		// sort by name. Locks appear once, in the historical format; the
		// workload corpus follows with its supported thread ranges.
		for _, alg := range locks.All() {
			tag := ""
			if alg.Buggy {
				tag = "  [known-buggy study case]"
			}
			fmt.Printf("%-16s %s%s\n", alg.Name, alg.Doc, tag)
		}
		for _, w := range workload.All() {
			tag := ""
			if w.Buggy() {
				tag = "  [known-buggy study case]"
			}
			lo, hi := w.Threads()
			rng := fmt.Sprintf("t=%d..%d", lo, hi)
			if hi == 0 {
				rng = fmt.Sprintf("t>=%d", lo)
			}
			fmt.Printf("%-24s %-8s %s%s\n", w.Name(), rng, w.Doc(), tag)
		}
		return
	}
	m := cli.ParseModel("vsynccheck", *model)
	st := cli.OpenStore("vsynccheck", *storePath, *remote)
	if st != nil {
		defer st.Close()
	}

	if *all {
		var ps []*vsync.Program
		var keys []vsync.StoreKey
		for _, alg := range locks.All() {
			if alg.Buggy {
				continue
			}
			spec := alg.DefaultSpec()
			p := harness.MutexClient(alg, spec, *threads, *iters)
			ps = append(ps, p)
			keys = append(keys, vsync.StoreKey{Model: m.Name(), Spec: spec.Fingerprint128(), Prog: p.Fingerprint128()})
		}
		fmt.Printf("checking %d algorithms under %s (%d threads × %d iterations, %d workers, %d per run)...\n",
			len(ps), m.Name(), *threads, *iters, cli.Effective(*par), cli.Effective(*workers))
		rr := vsync.RunCtx(ctx, m, ps, vsync.RunOptions{
			Parallelism:        *par,
			WorkersPerRun:      *workers,
			Store:              st,
			StoreKeys:          keys,
			Budget:             budget(),
			CheckpointDir:      dir,
			CheckpointInterval: *ckptInt,
			NoSymmetry:         *noSym,
		})
		if rr.StoreHits > 0 {
			fmt.Printf("store: %d of %d algorithms served without an AMC run\n", rr.StoreHits, len(ps))
		}
		if rr.StoreErr != nil {
			fmt.Fprintln(os.Stderr, "vsynccheck: warning:", rr.StoreErr)
		}
		if rr.Failed >= 0 {
			fmt.Printf("%s: %s\n", ps[rr.Failed].Name, rr.Result)
			switch rr.Result.Verdict {
			case core.Error:
				os.Exit(2)
			case core.Undecided:
				fmt.Println(resumeHint(dir))
				os.Exit(cli.ExitUndecided)
			}
			os.Exit(1)
		}
		fmt.Println(rr.Result)
		return
	}
	if (*lockName == "") == (*wlName == "") {
		fmt.Fprintln(os.Stderr, "vsynccheck: exactly one of -lock or -workload is required (try -list)")
		os.Exit(2)
	}
	var p *vsync.Program
	var spec *vsync.BarrierSpec
	if *lockName != "" {
		alg := locks.ByName(*lockName)
		if alg == nil {
			fmt.Fprintf(os.Stderr, "vsynccheck: unknown lock %q (try -list)\n", *lockName)
			os.Exit(2)
		}
		spec = alg.DefaultSpec()
		if *scOnly {
			spec = spec.AllSC()
		}
		p = harness.MutexClient(alg, spec, *threads, *iters)
	} else {
		w := workload.ByName(*wlName)
		if w == nil {
			fmt.Fprintf(os.Stderr, "vsynccheck: unknown workload %q (try -list)\n", *wlName)
			os.Exit(2)
		}
		lo, hi := w.Threads()
		if *threads < lo || (hi > 0 && *threads > hi) {
			if hi == 0 {
				fmt.Fprintf(os.Stderr, "vsynccheck: workload %s needs at least %d threads\n", w.Name(), lo)
			} else {
				fmt.Fprintf(os.Stderr, "vsynccheck: workload %s supports %d..%d threads\n", w.Name(), lo, hi)
			}
			os.Exit(2)
		}
		spec = w.DefaultSpec()
		if *scOnly {
			spec = spec.AllSC()
		}
		p = workload.Program(w, spec, *threads)
	}
	runStore := st
	if st != nil && *dotOut != "" {
		// A counterexample graph only exists on a real run; don't let a
		// store hit silently skip the artifact the user asked for.
		fmt.Println("note: -dot requested, bypassing the verdict store for this check")
		runStore = nil
	}
	fmt.Printf("checking %s under %s (%d threads × %d iterations, %d workers)...\n",
		p.Name, m.Name(), *threads, *iters, cli.Effective(*workers))
	rr := vsync.RunCtx(ctx, m, []*vsync.Program{p}, vsync.RunOptions{
		Parallelism:        1,
		WorkersPerRun:      *workers,
		CollectResults:     true,
		Store:              runStore,
		StoreKeys:          []vsync.StoreKey{{Model: m.Name(), Spec: spec.Fingerprint128(), Prog: p.Fingerprint128()}},
		Budget:             budget(),
		CheckpointDir:      dir,
		CheckpointInterval: *ckptInt,
		NoSymmetry:         *noSym,
	})
	res := rr.Results[0]
	if rr.StoreHits > 0 {
		fmt.Printf("%s under %s: %s (verdict served from store, no AMC run)\n", p.Name, m.Name(), res.Verdict)
		if res.Verdict != core.OK {
			os.Exit(1)
		}
		return
	}
	if rr.StoreErr != nil {
		fmt.Fprintln(os.Stderr, "vsynccheck: warning:", rr.StoreErr)
	}
	if res.Verdict == core.Error {
		fmt.Println(res)
		os.Exit(2)
	}
	if res.Verdict == core.Undecided {
		fmt.Println(res)
		fmt.Println(resumeHint(dir))
		os.Exit(cli.ExitUndecided)
	}
	if !res.Ok() {
		fmt.Println(res)
		if res.Witness != nil {
			fmt.Println("\ncounterexample execution graph:")
			fmt.Println(res.Witness.Render())
			if *dotOut != "" {
				if err := os.WriteFile(*dotOut, []byte(res.Witness.DOT(p.Name)), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "vsynccheck:", err)
				} else {
					fmt.Println("DOT graph written to", *dotOut)
				}
			}
		}
		os.Exit(1)
	}
	fmt.Print(res.Report())
}

// resumeHint tells the operator how to pick an undecided run back up.
func resumeHint(ckptDir string) string {
	if ckptDir == "" {
		return "undecided: the budget (or an interrupt) stopped the search; rerun with -checkpoint-dir to make such runs resumable"
	}
	return "undecided: frontier checkpointed to " + ckptDir + " — rerun the same command to resume where it stopped"
}

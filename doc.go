// Package repro is a from-scratch Go reproduction of "VSync:
// Push-Button Verification and Optimization for Synchronization
// Primitives on Weak Memory Models" (Oberhauser et al., ASPLOS 2021;
// technical report arXiv:2102.06590).
//
// The public API lives in repro/vsync; see README.md for a tour,
// DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmark harness
// in bench_test.go regenerates every table and figure of the paper's
// evaluation:
//
//	go test -bench=. -benchmem .
//
// The model checker's own hot path — work-graph exploration with
// intra-run work stealing, incremental relation extension, a
// closure-free acyclicity engine (bitset Kahn passes seeded by a
// topological order of sb ∪ rf ∪ mo carried incrementally across
// extension), 128-bit hashed dedup behind a sharded concurrent visited
// set with thread-symmetry reduction (canonicalized fingerprints
// collapse each thread-relabeling orbit of a symmetric lock client to
// one explored representative, cutting the state space by up to t!),
// copy-on-write graph branching, slab-allocated relation matrices
// with pooled scratch, and shared replay snapshots — is documented
// under "The work-graph explorer" and "Performance architecture" in
// README.md and tracked as machine-readable artifacts (including the
// worker scaling curve, the acyclicity micro rows and the verdict
// store's cold/warm suite latency):
//
//	go run ./cmd/vsyncbench -amc     # writes BENCH_amc.json
//	go run ./cmd/vsyncbench -suite   # writes BENCH_suite.json
//
// Verdicts persist in a shared, content-addressed store: any number of
// processes open sessions on one log (appends are record-atomic under
// a short-held sidecar lock; Refresh observes concurrent writers),
// store files merge as a dedup-union, and an optional HTTP tier
// (cmd/vsyncstored, `make stored`) pools a corpus across machines with
// graceful local-only degradation. See "Sharing the verdict store" in
// README.md.
package repro

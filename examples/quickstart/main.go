// Quickstart: verify a lock with Await Model Checking, watch a bug get
// caught, and relax barriers push-button style.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/vsync"
)

func main() {
	// 1. Verify the TTAS lock (the paper's Fig. 3) under the weak
	// memory model: two threads, one lock-protected increment each.
	// AMC checks mutual exclusion, the hand-off ordering AND await
	// termination — in finite time, despite the spin loops.
	ttas := vsync.LockByName("ttas")
	res := vsync.VerifyLock(ttas, ttas.DefaultSpec(), 2, 1)
	fmt.Println("ttas (relaxed barriers):", res)

	// 2. Break it: relax the exchange that acquires the lock to rlx.
	// The critical section can now read stale data; AMC produces a
	// counterexample execution graph.
	broken := ttas.DefaultSpec()
	broken.Set("ttas.xchg", vsync.Rlx)
	broken.Set("ttas.unlock", vsync.Rlx)
	res = vsync.VerifyLock(ttas, broken, 2, 1)
	fmt.Println("\nttas (rlx acquire+release):", res)
	if res.Witness != nil {
		fmt.Println("counterexample execution graph:")
		fmt.Println(res.Witness.Render())
	}

	// 3. Push-button optimization: start from the sc-only variant and
	// let the optimizer find the weakest verified assignment.
	opt, err := vsync.OptimizeLock(ttas, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println("barrier optimization from all-SC:")
	fmt.Println(opt.Report())
}

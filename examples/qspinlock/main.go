// Study case §3.3 / Table 1: push-button barrier optimization of the
// Linux qspinlock.
//
// Starting from the sc-only baseline, the optimizer relaxes each of the
// lock's barrier points while AMC keeps verifying the client set: a
// two-thread client covers the fast path and the pending bit, a
// three-thread client the MCS queue end to end, and the extracted
// queue-path litmus (the paper's Fig. 1 methodology) covers the MCS
// hand-off between two queued waiters — the path whose missing barrier
// was the real Linux 4.16 bug. The paper's GenMC-based optimization
// took 11 minutes; this one takes a couple of minutes.
//
// Run with: go run ./examples/qspinlock
package main

import (
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/harness"
	"repro/vsync"
)

func main() {
	alg := vsync.LockByName("qspin")
	programs := func(spec *vsync.BarrierSpec) []*vsync.Program {
		return []*vsync.Program{
			vsync.MutexClient(alg, spec, 2, 1),
			harness.QspinQueuePathLitmus(spec),
			vsync.MutexClient(alg, spec, 3, 1),
		}
	}

	fmt.Println("optimizing qspinlock from the sc-only baseline…")
	start := time.Now()
	res, err := vsync.OptimizeWith(vsync.ModelWMM, programs, alg.DefaultSpec().AllSC())
	if err != nil {
		panic(err)
	}
	fmt.Println()
	fmt.Println(res.Report())

	fmt.Println(bench.Table1(res.Counts(), time.Since(start).Round(time.Second).String()))
	fmt.Println("(barrier counts differ slightly from the paper's IMM/LKMM results;")
	fmt.Println(" multiple maximally-relaxed assignments exist — §3.3.)")
}

// Study case §3.1: the DPDK v20.05 MCS lock bug.
//
// The shipped rte_mcslock publishes prev->next with a relaxed store.
// On a weak memory model the releaser's hand-off can then be
// modification-ordered before the waiter's own initialization, and the
// waiter (Alice) spins forever. AMC detects the hang as an
// await-termination violation and prints the Fig. 14 execution graph;
// the same code verifies under SC and TSO, which is why the bug
// survived review — and the optimizer confirms the §3.1 side-finding
// that the explicit fence in the acquire path is useless.
//
// Run with: go run ./examples/dpdkmcs
package main

import (
	"fmt"

	"repro/vsync"
)

func main() {
	buggy := vsync.LockByName("dpdkmcs-buggy")
	fixed := vsync.LockByName("dpdkmcs")

	fmt.Println("== DPDK rte_mcslock, shipped version (relaxed prev->next) ==")
	for _, model := range []vsync.Model{vsync.ModelSC, vsync.ModelTSO, vsync.ModelWMM} {
		res := vsync.Verify(model, vsync.MutexClient(buggy, buggy.DefaultSpec(), 2, 1))
		fmt.Printf("  %-4s: %v\n", model.Name(), res)
		if res.Verdict == vsync.ATViolation {
			fmt.Println("\n  Alice hangs — the counterexample graph (cf. Fig. 14):")
			fmt.Println(indent(res.Witness.Render()))
			fmt.Println("  DOT rendering available via res.Witness.DOT(...)")
		}
	}

	fmt.Println("== with the Fig. 15 fix (release store, acquire read) ==")
	for _, model := range []vsync.Model{vsync.ModelSC, vsync.ModelTSO, vsync.ModelWMM} {
		res := vsync.Verify(model, vsync.MutexClient(fixed, fixed.DefaultSpec(), 2, 1))
		fmt.Printf("  %-4s: %v\n", model.Name(), res)
	}

	fmt.Println("\n== optimizer on the fixed lock ==")
	opt, err := vsync.OptimizeWith(vsync.ModelWMM,
		func(spec *vsync.BarrierSpec) []*vsync.Program {
			return []*vsync.Program{vsync.MutexClient(fixed, spec, 2, 1)}
		}, fixed.DefaultSpec())
	if err != nil {
		panic(err)
	}
	fmt.Println(opt.Report())
	if opt.Final.M("dpdk.pre_await_fence") == vsync.ModeNone {
		fmt.Println("…the explicit fence before the await is useless and was removed (§3.1).")
	}
}

func indent(s string) string {
	out := ""
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '\n' {
			if i > start {
				out += "    " + s[start:i] + "\n"
			}
			start = i + 1
		}
	}
	return out
}

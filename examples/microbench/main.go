// Microbenchmark campaign (§4.2): the Listing-1 loop — acquire,
// increment a shared counter, release — across the simulated ARMv8 and
// x86 platforms, 18 lock algorithms, sc-only vs VSync-optimized
// variants and the paper's thread ladder. Prints Tables 2–5 and the
// Figs. 23–26 densities/heat maps.
//
// Run with: go run ./examples/microbench [-full]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/vsync"
)

func main() {
	full := flag.Bool("full", false, "run the paper's full parameter grid (slower)")
	flag.Parse()

	cfg := vsync.QuickBench()
	if *full {
		cfg = vsync.DefaultBench()
	}
	fmt.Printf("running campaign: %d machines × %d locks × 2 variants × %v threads × %d runs\n\n",
		len(cfg.Machines), len(cfg.Algorithms), cfg.Threads, cfg.Runs)
	start := time.Now()
	fmt.Println(vsync.BenchReport(cfg))
	fmt.Printf("campaign completed in %v\n", time.Since(start).Round(time.Millisecond))
}

// Benchmark harness: one target per table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index). Each target
// regenerates its artifact and prints it once; the benchmark timings
// measure the cost of producing the artifact on this machine.
//
//	go test -bench=. -benchmem .
//	go test -bench=BenchmarkTable5 .
//
// Heavy experiments (the Table 1 qspinlock optimization) honor -short.
package repro_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/locks"
	"repro/internal/mm"
	"repro/internal/native"
	"repro/internal/optimize"
	"repro/internal/vprog"
	"repro/internal/wmsim"
)

// campaign runs the §4.2 microbenchmark campaign once and shares the
// records across every table/figure benchmark.
var campaign struct {
	once     sync.Once
	cfg      bench.Config
	recs     []bench.Record
	groups   []bench.Group
	kept     []bench.Group
	dropped  []bench.Group
	speedups []bench.Speedup
}

func campaignData(b *testing.B) {
	campaign.once.Do(func() {
		campaign.cfg = bench.Quick()
		campaign.recs = bench.RunCampaign(campaign.cfg)
		campaign.groups = bench.GroupRecords(campaign.recs)
		campaign.kept, campaign.dropped = bench.StabilityFilter(campaign.groups, 1.2)
		campaign.speedups = bench.Speedups(campaign.kept)
	})
	if len(campaign.recs) == 0 {
		b.Fatal("campaign produced no records")
	}
}

var printOnce sync.Map

// emit prints an artifact once per process, however many times the
// benchmark loop runs.
func emit(name, artifact string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n%s\n", artifact)
	}
}

// BenchmarkTable1_QspinlockOptimization regenerates Table 1: the
// push-button barrier optimization of the Linux qspinlock from the
// all-SC baseline, verified by AMC against the fast-path client, the
// queue-path litmus and the three-thread queue client (paper: 11
// minutes on GenMC; acq/rel/sc = 7/2/1).
func BenchmarkTable1_QspinlockOptimization(b *testing.B) {
	if testing.Short() {
		b.Skip("qspinlock optimization takes minutes")
	}
	alg := locks.ByName("qspin")
	for i := 0; i < b.N; i++ {
		opt := &optimize.Optimizer{
			Model: mm.WMM,
			Programs: func(spec *vprog.BarrierSpec) []*vprog.Program {
				return []*vprog.Program{
					harness.MutexClient(alg, spec, 2, 1),
					harness.QspinQueuePathLitmus(spec),
					harness.MutexClient(alg, spec, 3, 1),
				}
			},
			Parallelism: 1, // the paper-faithful sequential baseline
		}
		start := time.Now()
		res, err := opt.Run(alg.DefaultSpec().AllSC())
		if err != nil {
			b.Fatal(err)
		}
		emit("table1", bench.Table1(res.Counts(), time.Since(start).Round(time.Second).String())+
			"\n"+res.Report())
	}
}

// BenchmarkTable1_QspinlockOptimizationParallel is Table 1 on the
// parallel verification engine: client programs fan across GOMAXPROCS
// workers, candidate ladders race speculatively, and verdicts are
// memoized. The final spec is identical to the sequential run; the
// wall-clock difference (and the per-worker breakdown in the report) is
// the point.
func BenchmarkTable1_QspinlockOptimizationParallel(b *testing.B) {
	if testing.Short() {
		b.Skip("qspinlock optimization takes minutes")
	}
	alg := locks.ByName("qspin")
	for i := 0; i < b.N; i++ {
		opt := &optimize.Optimizer{
			Model: mm.WMM,
			Programs: func(spec *vprog.BarrierSpec) []*vprog.Program {
				return []*vprog.Program{
					harness.MutexClient(alg, spec, 2, 1),
					harness.QspinQueuePathLitmus(spec),
					harness.MutexClient(alg, spec, 3, 1),
				}
			},
			Parallelism: 0, // GOMAXPROCS
			Speculate:   true,
			Cache:       optimize.NewCache(),
		}
		res, err := opt.Run(alg.DefaultSpec().AllSC())
		if err != nil {
			b.Fatal(err)
		}
		emit("table1par", bench.Table1(res.Counts(), res.Duration.Round(time.Second).String())+
			"\n"+res.Report())
	}
}

// BenchmarkTable2_RawRecords regenerates the raw record listing.
func BenchmarkTable2_RawRecords(b *testing.B) {
	campaignData(b)
	for i := 0; i < b.N; i++ {
		emit("table2", bench.Table2(campaign.recs, 16))
	}
}

// BenchmarkTable3_GroupedStats regenerates the grouped statistics.
func BenchmarkTable3_GroupedStats(b *testing.B) {
	campaignData(b)
	for i := 0; i < b.N; i++ {
		out := bench.Table3(bench.GroupRecords(campaign.recs))
		emit("table3", out)
	}
}

// BenchmarkTable4_StabilityCategories regenerates the stability
// categorization.
func BenchmarkTable4_StabilityCategories(b *testing.B) {
	campaignData(b)
	for i := 0; i < b.N; i++ {
		emit("table4", bench.Table4(campaign.groups)+
			fmt.Sprintf("(filtered out %d of %d groups above stability 1.2)\n",
				len(campaign.dropped), len(campaign.groups)))
	}
}

// BenchmarkTable5_Speedups regenerates the per-lock speedup summary.
func BenchmarkTable5_Speedups(b *testing.B) {
	campaignData(b)
	for i := 0; i < b.N; i++ {
		out := bench.Table5(bench.Speedups(campaign.kept))
		emit("table5", out)
	}
}

// BenchmarkFig23_StabilityDensity regenerates the stability densities.
func BenchmarkFig23_StabilityDensity(b *testing.B) {
	campaignData(b)
	for i := 0; i < b.N; i++ {
		emit("fig23", bench.Fig23(campaign.groups))
	}
}

// BenchmarkFig24_SpeedupDensity regenerates the speedup densities.
func BenchmarkFig24_SpeedupDensity(b *testing.B) {
	campaignData(b)
	for i := 0; i < b.N; i++ {
		emit("fig24", bench.Fig24(campaign.speedups))
	}
}

// BenchmarkFig25_HeatmapARM regenerates the ARMv8 speedup heat map.
func BenchmarkFig25_HeatmapARM(b *testing.B) {
	campaignData(b)
	for i := 0; i < b.N; i++ {
		emit("fig25", bench.Fig25(campaign.speedups, campaign.cfg.Threads))
	}
}

// BenchmarkFig26_HeatmapX86 regenerates the x86 speedup heat map.
func BenchmarkFig26_HeatmapX86(b *testing.B) {
	campaignData(b)
	for i := 0; i < b.N; i++ {
		emit("fig26", bench.Fig26(campaign.speedups, campaign.cfg.Threads))
	}
}

// BenchmarkFig27_MCSComparison regenerates the MCS implementation
// comparison (CertiKOS / ck / DPDK / own) on both platforms.
func BenchmarkFig27_MCSComparison(b *testing.B) {
	threads := []int{1, 2, 4, 8, 16, 31, 63}
	for i := 0; i < b.N; i++ {
		out := ""
		for _, mc := range wmsim.Machines() {
			out += bench.Fig27(mc, threads, 3, 100_000) + "\n"
		}
		emit("fig27", out)
	}
}

// BenchmarkCSSizeSweep regenerates the §4.2.2 critical-section-size
// finding (speedups shrink as the critical section grows).
func BenchmarkCSSizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, mc := range wmsim.Machines() {
			t, _ := bench.CSSweep(mc, "mcs", 1, []int{1, 4, 16, 64}, 120_000)
			out += t + "\n"
		}
		emit("cssweep", out)
	}
}

// BenchmarkESSizeSweep regenerates the companion finding (outside-
// section work does not change the speedup).
func BenchmarkESSizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := ""
		for _, mc := range wmsim.Machines() {
			t, _ := bench.ESSweep(mc, "mcs", 8, []int{0, 4, 16}, 120_000)
			out += t + "\n"
		}
		emit("essweep", out)
	}
}

// BenchmarkStudyCases measures AMC's bug-finding speed on the §3 study
// cases (the DPDK hang and the Huawei lost update).
func BenchmarkStudyCases(b *testing.B) {
	cases := []struct {
		name string
		alg  string
		want core.Verdict
	}{
		{"dpdk", "dpdkmcs-buggy", core.ATViolation},
		{"huawei", "huaweimcs-buggy", core.SafetyViolation},
	}
	for _, c := range cases {
		c := c
		b.Run(c.name, func(b *testing.B) {
			alg := locks.ByName(c.alg)
			for i := 0; i < b.N; i++ {
				res := core.New(mm.WMM).Run(harness.MutexClient(alg, alg.DefaultSpec(), 2, 1))
				if res.Verdict != c.want {
					b.Fatalf("want %v, got %v", c.want, res)
				}
			}
		})
	}
}

// BenchmarkAMC measures verification throughput on representative
// locks (the cost of one push-button check). graphs/sec is the
// headline hot-path metric tracked in BENCH_amc.json.
func BenchmarkAMC(b *testing.B) {
	for _, name := range []string{"spin", "ttas", "ticket", "mcs", "clh", "qspin"} {
		name := name
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			alg := locks.ByName(name)
			p := harness.MutexClient(alg, alg.DefaultSpec(), 2, 1)
			graphs := 0
			for i := 0; i < b.N; i++ {
				res := core.New(mm.WMM).Run(p)
				if !res.Ok() {
					b.Fatal(res)
				}
				graphs += res.Stats.Popped
			}
			b.ReportMetric(float64(graphs)/b.Elapsed().Seconds(), "graphs/sec")
		})
	}
}

// BenchmarkAMCLitmus measures the checker on the litmus corpus — small
// explorations where fixed per-run overhead dominates.
func BenchmarkAMCLitmus(b *testing.B) {
	for _, name := range harness.LitmusNames() {
		name := name
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			p := harness.Litmus(name, false)
			graphs := 0
			for i := 0; i < b.N; i++ {
				res := core.New(mm.WMM).Run(p)
				if res.Verdict == core.Error {
					b.Fatal(res)
				}
				graphs += res.Stats.Popped
			}
			b.ReportMetric(float64(graphs)/b.Elapsed().Seconds(), "graphs/sec")
		})
	}
}

// BenchmarkAMCSuite exercises the tracked-suite driver itself (one
// measured run per target), catching bit-rot in the BENCH_amc.json
// emitter the way the table benchmarks do for the paper artifacts.
func BenchmarkAMCSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		suite := bench.RunAMCSuite(1)
		if len(suite.Results) == 0 {
			b.Fatal("empty AMC suite")
		}
		emit("amcsuite", suite.String())
	}
}

// BenchmarkNativeLocks measures the real (sync/atomic) throughput of
// the verified locks under goroutine contention — the native companion
// to the simulated campaign.
func BenchmarkNativeLocks(b *testing.B) {
	for _, name := range []string{"spin", "ttas", "ticket", "mcs", "clh", "qspin", "mutex"} {
		name := name
		b.Run(name, func(b *testing.B) {
			p := harness.MutexClient(locks.ByName(name), locks.ByName(name).DefaultSpec(), 4, 200)
			for i := 0; i < b.N; i++ {
				if err := native.RunProgram(p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
